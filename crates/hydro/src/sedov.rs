//! The 3D Sedov blast wave problem (paper §7, Figure 11).
//!
//! A point-like energy deposition in a cold uniform gas drives a
//! self-similar spherical shock: `R(t) = ξ₀ (E₀ t² / ρ₀)^{1/5}`
//! (Sedov 1946, the paper's reference \[18\]). The problem "stresses the
//! hydrodynamics calculation in ARES" and is the workload behind every
//! figure of the evaluation.

use crate::state::{HydroState, EN, RHO};
use hsim_raja::Fidelity;

/// Problem parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SedovConfig {
    /// Total deposited energy.
    pub e0: f64,
    /// Ambient density.
    pub rho0: f64,
    /// Ambient pressure (cold background).
    pub p0: f64,
    /// Deposition radius in zone widths.
    pub deposit_radius_zones: f64,
}

impl Default for SedovConfig {
    fn default() -> Self {
        SedovConfig {
            e0: 1.0,
            rho0: 1.0,
            p0: 1e-6,
            deposit_radius_zones: 1.8,
        }
    }
}

/// The self-similar shock radius at time `t` (γ = 1.4 similarity
/// constant ξ₀ ≈ 1.152).
pub fn sedov_shock_radius(e0: f64, rho0: f64, t: f64) -> f64 {
    1.152 * (e0 * t * t / rho0).powf(0.2)
}

/// Initialize the Sedov problem on this rank's subdomain.
///
/// Deterministic and decomposition-independent: every rank computes
/// the same global deposition-zone count, so the deposited energy
/// density is identical regardless of how the grid is partitioned.
pub fn init(state: &mut HydroState, cfg: &SedovConfig) {
    state.init_ambient(cfg.rho0, cfg.p0);
    state.t = 0.0;
    state.cycle = 0;
    if state.fidelity == Fidelity::CostOnly {
        return;
    }
    let grid = state.grid;
    let (dx, _, _) = grid.spacing();
    let center = (grid.lx / 2.0, grid.ly / 2.0, grid.lz / 2.0);
    let r_dep = cfg.deposit_radius_zones * dx;

    // Global count of deposition zones (scan a bounding box around the
    // center — cheap, radius is a few zones).
    let reach = cfg.deposit_radius_zones.ceil() as i64 + 1;
    let (ci, cj, ck) = grid.zone_at(center.0, center.1, center.2);
    let mut in_sphere: Vec<(usize, usize, usize)> = Vec::new();
    for dk in -reach..=reach {
        for dj in -reach..=reach {
            for di in -reach..=reach {
                let i = ci as i64 + di;
                let j = cj as i64 + dj;
                let k = ck as i64 + dk;
                if i < 0 || j < 0 || k < 0 {
                    continue;
                }
                let (i, j, k) = (i as usize, j as usize, k as usize);
                if i >= grid.nx || j >= grid.ny || k >= grid.nz {
                    continue;
                }
                let (x, y, z) = grid.zone_center(i, j, k);
                let d2 = (x - center.0).powi(2) + (y - center.1).powi(2) + (z - center.2).powi(2);
                if d2 <= r_dep * r_dep {
                    in_sphere.push((i, j, k));
                }
            }
        }
    }
    assert!(!in_sphere.is_empty(), "deposition radius too small");
    let e_density = cfg.e0 / (in_sphere.len() as f64 * dx * dx * dx);

    // Deposit into owned zones.
    let sub = state.sub;
    for &(i, j, k) in &in_sphere {
        let inside = (0..3).all(|a| {
            let c = [i, j, k][a];
            c >= sub.lo[a] && c < sub.hi[a]
        });
        if inside {
            let (li, lj, lk) = (i - sub.lo[0], j - sub.lo[1], k - sub.lo[2]);
            let base = state.u.get(EN, li, lj, lk);
            state.u.set(EN, li, lj, lk, base + e_density);
        }
    }
}

/// Radially-binned mean density: `(r_mid, mean_rho, zone_count)` per
/// bin over this rank's owned zones. For a full-domain state this is
/// the Figure 11 visualization's data.
pub fn radial_density_profile(state: &HydroState, nbins: usize) -> Vec<(f64, f64, u64)> {
    assert!(nbins > 0);
    let grid = state.grid;
    let center = (grid.lx / 2.0, grid.ly / 2.0, grid.lz / 2.0);
    let r_max = (center.0.powi(2) + center.1.powi(2) + center.2.powi(2)).sqrt();
    let mut sum = vec![0.0; nbins];
    let mut count = vec![0u64; nbins];
    let sub = state.sub;
    let rho = &state.u;
    for k in 0..sub.extent(2) {
        for j in 0..sub.extent(1) {
            for i in 0..sub.extent(0) {
                let (x, y, z) = grid.zone_center(i + sub.lo[0], j + sub.lo[1], k + sub.lo[2]);
                let r = ((x - center.0).powi(2) + (y - center.1).powi(2) + (z - center.2).powi(2))
                    .sqrt();
                let bin = ((r / r_max) * nbins as f64) as usize;
                let bin = bin.min(nbins - 1);
                sum[bin] += rho.get(RHO, i, j, k);
                count[bin] += 1;
            }
        }
    }
    (0..nbins)
        .map(|b| {
            let r_mid = (b as f64 + 0.5) / nbins as f64 * r_max;
            let mean = if count[b] > 0 {
                sum[b] / count[b] as f64
            } else {
                0.0
            };
            (r_mid, mean, count[b])
        })
        .collect()
}

/// The radius of peak mean density — the numerical shock position.
pub fn shock_position(profile: &[(f64, f64, u64)]) -> f64 {
    profile
        .iter()
        .filter(|(_, _, c)| *c > 0)
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("densities are finite"))
        .map(|(r, _, _)| *r)
        .unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::GAMMA;
    use hsim_mesh::{GlobalGrid, Subdomain};

    fn full_state(n: usize) -> HydroState {
        let grid = GlobalGrid::new(n, n, n);
        let sub = Subdomain::new([0, 0, 0], [n, n, n], 1);
        HydroState::new(grid, sub, Fidelity::Full)
    }

    #[test]
    fn deposit_conserves_total_energy() {
        let mut st = full_state(16);
        let cfg = SedovConfig::default();
        init(&mut st, &cfg);
        let e_total = st.total_energy();
        // Background energy: p0/(γ-1) × volume.
        let vol = st.grid.lx * st.grid.ly * st.grid.lz;
        let background = cfg.p0 / (GAMMA - 1.0) * vol;
        assert!(
            ((e_total - background) - cfg.e0).abs() / cfg.e0 < 1e-10,
            "deposited {} vs e0 {}",
            e_total - background,
            cfg.e0
        );
    }

    #[test]
    fn deposit_is_decomposition_independent() {
        // Sum of energies over 8 octant subdomains equals the
        // full-domain energy.
        let cfg = SedovConfig::default();
        let mut full = full_state(16);
        init(&mut full, &cfg);
        let e_full = full.total_energy();

        let grid = GlobalGrid::new(16, 16, 16);
        let mut e_split = 0.0;
        for oz in 0..2 {
            for oy in 0..2 {
                for ox in 0..2 {
                    let sub = Subdomain::new(
                        [ox * 8, oy * 8, oz * 8],
                        [(ox + 1) * 8, (oy + 1) * 8, (oz + 1) * 8],
                        1,
                    );
                    let mut st = HydroState::new(grid, sub, Fidelity::Full);
                    init(&mut st, &cfg);
                    e_split += st.total_energy();
                }
            }
        }
        assert!((e_full - e_split).abs() / e_full < 1e-10);
    }

    #[test]
    fn analytic_radius_grows_as_t_to_two_fifths() {
        let r1 = sedov_shock_radius(1.0, 1.0, 0.01);
        let r2 = sedov_shock_radius(1.0, 1.0, 0.02);
        let ratio = r2 / r1;
        assert!((ratio - 2f64.powf(0.4)).abs() < 1e-12);
        // More energy ⇒ bigger shock.
        assert!(sedov_shock_radius(2.0, 1.0, 0.01) > r1);
        // Denser medium ⇒ smaller shock.
        assert!(sedov_shock_radius(1.0, 2.0, 0.01) < r1);
    }

    #[test]
    fn profile_of_fresh_deposit_peaks_at_center_energy_only() {
        let mut st = full_state(16);
        init(&mut st, &SedovConfig::default());
        let profile = radial_density_profile(&st, 8);
        assert_eq!(profile.len(), 8);
        // Density is still uniform: all non-empty bins at rho0.
        for (_, rho, c) in &profile {
            if *c > 0 {
                assert!((rho - 1.0).abs() < 1e-12);
            }
        }
        let total: u64 = profile.iter().map(|(_, _, c)| c).sum();
        assert_eq!(total, 16 * 16 * 16);
    }

    #[test]
    fn cost_only_init_is_a_noop() {
        let grid = GlobalGrid::new(64, 64, 64);
        let sub = Subdomain::new([0, 0, 0], [64, 64, 64], 1);
        let mut st = HydroState::new(grid, sub, Fidelity::CostOnly);
        init(&mut st, &SedovConfig::default());
        assert!(st.u.var(EN).len() < 64);
    }
}
