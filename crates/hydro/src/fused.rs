//! Fused cache-blocked hydro kernels — the production CPU path.
//!
//! The legacy modules ([`crate::eos`], [`crate::flux`],
//! [`crate::muscl`], and the per-variable save/combine loops) launch
//! one fine-grained kernel per (pass, variable, axis), so every pass
//! streams the whole grid through cache again. This module fuses each
//! multi-kernel stage into a single pass over y–z **tiles**: a tile's
//! x-rows of every variable are loaded once, all passes for that tile
//! run while the rows are cache-resident, and the tile writes its
//! outputs through [`DisjointRowsMut`] row guards.
//!
//! Two invariants make the fusion invisible to everything downstream:
//!
//! 1. **Charge parity.** Each fused stage first replays the *exact*
//!    legacy launch sequence through [`Executor::charge3`] — same
//!    kernel descriptors, shapes, and order — so virtual time, launch
//!    counts, telemetry spans, and therefore every figure and trace
//!    byte are identical to the per-pass path. [`Executor::run_tiles`]
//!    itself charges nothing.
//! 2. **Bitwise identity.** Per zone, the fused arithmetic performs
//!    the same f64 operations in the same order as the legacy kernels
//!    (helpers below mirror the legacy loop bodies expression for
//!    expression), zones are independent within a pass, and per-zone
//!    accumulation keeps the legacy axis-then-variable order. Faces on
//!    tile seams are recomputed by both neighboring tiles — pure
//!    functions of unmodified inputs, so both compute the same bits.
//!    Tile shape and worker count therefore never change results; the
//!    property tests in `tests/` check this exhaustively.
//!
//! Row helpers live at module scope (not inside tile bodies): the
//! `tile-bounds` tidy lint forbids per-element indexing inside
//! `run_tiles` bodies, so bodies only carve ranges and call helpers.

use hsim_gpu::GpuError;
use hsim_raja::{DisjointRowsMut, Executor, Fidelity, TileSet2};
use hsim_time::RankClock;

use crate::flux::phys_flux;
use crate::kernels;
use crate::muscl::{minmod, phys_flux_axis};
use crate::state::{HydroState, CS, EN, GAMMA, MX, MY, MZ, NCONS, PR, P_FLOOR, RHO, RHO_FLOOR, VX};

/// One variable's allocated x-row of a var-major slab at allocated
/// transverse coordinates `(j, k)`.
#[inline]
fn row_of(slab: &[f64], dims: [usize; 3], v: usize, j: usize, k: usize) -> &[f64] {
    let start = (v * dims[1] * dims[2] + k * dims[1] + j) * dims[0];
    &slab[start..start + dims[0]]
}

/// The owned-i interior of [`row_of`] (ghost ends trimmed).
#[inline]
fn owned_row(slab: &[f64], dims: [usize; 3], g: usize, v: usize, j: usize, k: usize) -> &[f64] {
    let row = row_of(slab, dims, v, j, k);
    &row[g..row.len() - g]
}

/// Global row index of variable `v`'s x-row at allocated `(j, k)` in a
/// [`DisjointRowsMut`] over the slab with `row_len = dims[0]`.
#[inline]
fn row_index(dims: [usize; 3], v: usize, j: usize, k: usize) -> usize {
    v * dims[1] * dims[2] + k * dims[1] + j
}

// ---------------------------------------------------------------------
// Primitive recovery (legacy: eos::primitives, 3 kernels).
// ---------------------------------------------------------------------

/// One row of the fused primitive recovery. Mirrors the legacy
/// VELOCITY → PRESSURE → SOUND_SPEED chain per element: the stored
/// intermediate values the legacy kernels re-read are recomputed here
/// from identical expressions, so the outputs agree bitwise.
#[allow(clippy::too_many_arguments)]
fn prim_row(
    rho: &[f64],
    mx: &[f64],
    my: &[f64],
    mz: &[f64],
    en: &[f64],
    vx: &mut [f64],
    vy: &mut [f64],
    vz: &mut [f64],
    p: &mut [f64],
    cs: &mut [f64],
) {
    for i in 0..rho.len() {
        let r = rho[i].max(RHO_FLOOR);
        let ux = mx[i] / r;
        let uy = my[i] / r;
        let uz = mz[i] / r;
        vx[i] = ux;
        vy[i] = uy;
        vz[i] = uz;
        let ke = 0.5 * r * (ux * ux + uy * uy + uz * uz);
        let pv = ((GAMMA - 1.0) * (en[i] - ke)).max(P_FLOOR);
        p[i] = pv;
        cs[i] = (GAMMA * pv / r).sqrt();
    }
}

/// Fused primitive recovery: charges the legacy VELOCITY, PRESSURE,
/// SOUND_SPEED launches, then fills all five primitive variables in
/// one tiled pass over the allocated y–z plane.
pub fn primitives(
    state: &mut HydroState,
    exec: &mut Executor,
    clock: &mut RankClock,
) -> Result<(), GpuError> {
    let ext = state.ext_all();
    exec.charge3(clock, &kernels::VELOCITY, ext)?;
    exec.charge3(clock, &kernels::PRESSURE, ext)?;
    exec.charge3(clock, &kernels::SOUND_SPEED, ext)?;
    if exec.fidelity != Fidelity::Full {
        return Ok(());
    }
    let dims = state.u.dims();
    let tiles = TileSet2::new(dims[1], dims[2], state.tile);
    let (u, prim) = (&state.u, &mut state.prim);
    let u_slab = u.slab();
    let rows = DisjointRowsMut::new(prim.slab_mut(), dims[0]);
    exec.run_tiles(&tiles, |tile| {
        for k in tile.k0..tile.k1 {
            for j in tile.j0..tile.j1 {
                let rho = row_of(u_slab, dims, RHO, j, k);
                let mx = row_of(u_slab, dims, MX, j, k);
                let my = row_of(u_slab, dims, MY, j, k);
                let mz = row_of(u_slab, dims, MZ, j, k);
                let en = row_of(u_slab, dims, EN, j, k);
                let mut vx = rows.claim(row_index(dims, VX, j, k));
                let mut vy = rows.claim(row_index(dims, VX + 1, j, k));
                let mut vz = rows.claim(row_index(dims, VX + 2, j, k));
                let mut p = rows.claim(row_index(dims, PR, j, k));
                let mut cs = rows.claim(row_index(dims, CS, j, k));
                prim_row(
                    rho,
                    mx,
                    my,
                    mz,
                    en,
                    &mut vx[..],
                    &mut vy[..],
                    &mut vz[..],
                    &mut p[..],
                    &mut cs[..],
                );
            }
        }
    });
    Ok(())
}

// ---------------------------------------------------------------------
// Save / combine (legacy: cycle-private per-variable loops, 5 kernels).
// ---------------------------------------------------------------------

/// Fused RK snapshot `u0 ← u`: charges the five legacy SAVE_STATE
/// launches, then copies the whole slab once.
pub fn save_state(
    st: &mut HydroState,
    exec: &mut Executor,
    clock: &mut RankClock,
) -> Result<(), GpuError> {
    let ext = st.ext_all();
    for _ in 0..NCONS {
        exec.charge3(clock, &kernels::SAVE_STATE, ext)?;
    }
    if exec.fidelity == Fidelity::Full {
        let (u, u0) = (&st.u, &mut st.u0);
        u0.copy_from(u);
    }
    Ok(())
}

/// Fused Heun combine `u0 ← ½u0 + ½u`: charges the five legacy
/// COMBINE launches, then runs the element-wise average once over the
/// whole slab (same per-element expression as the legacy kernel).
pub fn combine(
    st: &mut HydroState,
    exec: &mut Executor,
    clock: &mut RankClock,
) -> Result<(), GpuError> {
    let ext = st.ext_all();
    for _ in 0..NCONS {
        exec.charge3(clock, &kernels::COMBINE, ext)?;
    }
    if exec.fidelity == Fidelity::Full {
        let (u, u0) = (&st.u, &mut st.u0);
        for (dst, src) in u0.slab_mut().iter_mut().zip(u.slab()) {
            *dst = 0.5 * *dst + 0.5 * *src;
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// First-order sweep (legacy: flux::sweep, 33 kernels).
// ---------------------------------------------------------------------

/// Per-face max wavespeed along x for one row: face `i` sits between
/// allocated zones `i+g−1` and `i+g` of the same row.
fn x_wavespeed_row(va: &[f64], cs: &[f64], g: usize, ws: &mut [f64]) {
    for (i, w) in ws.iter_mut().enumerate() {
        let il = g - 1 + i;
        let ir = g + i;
        let sl = va[il].abs() + cs[il];
        let sr = va[ir].abs() + cs[ir];
        *w = sl.max(sr);
    }
}

/// Rusanov flux along x for one row of one conserved variable.
fn x_flux_row(var: usize, q: &[f64], va: &[f64], p: &[f64], ws: &[f64], g: usize, fx: &mut [f64]) {
    for i in 0..fx.len() {
        let il = g - 1 + i;
        let ir = g + i;
        let fl = phys_flux(var, 0, q[il], va[il], p[il]);
        let fr = phys_flux(var, 0, q[ir], va[ir], p[ir]);
        fx[i] = 0.5 * (fl + fr) - 0.5 * ws[i] * (q[ir] - q[il]);
    }
}

/// Per-face max wavespeed along a transverse axis for one i-row pair
/// (`_l`/`_r` are the owned-i rows on either side of the face).
fn t_wavespeed_row(va_l: &[f64], va_r: &[f64], cs_l: &[f64], cs_r: &[f64], ws: &mut [f64]) {
    for i in 0..ws.len() {
        let sl = va_l[i].abs() + cs_l[i];
        let sr = va_r[i].abs() + cs_r[i];
        ws[i] = sl.max(sr);
    }
}

/// Rusanov flux along a transverse axis for one i-row of one variable.
#[allow(clippy::too_many_arguments)]
fn t_flux_row(
    var: usize,
    axis: usize,
    q_l: &[f64],
    q_r: &[f64],
    va_l: &[f64],
    va_r: &[f64],
    p_l: &[f64],
    p_r: &[f64],
    ws: &[f64],
    fx: &mut [f64],
) {
    for i in 0..fx.len() {
        let fl = phys_flux(var, axis, q_l[i], va_l[i], p_l[i]);
        let fr = phys_flux(var, axis, q_r[i], va_r[i], p_r[i]);
        fx[i] = 0.5 * (fl + fr) - 0.5 * ws[i] * (q_r[i] - q_l[i]);
    }
}

/// Flux-difference update of one owned row: `tgt[g+i] -= scale·(f_hi −
/// f_lo)` — the legacy UPDATE body verbatim.
fn update_row(tgt: &mut [f64], g: usize, scale: f64, f_lo: &[f64], f_hi: &[f64]) {
    for i in 0..f_lo.len() {
        tgt[g + i] -= scale * (f_hi[i] - f_lo[i]);
    }
}

/// Fused first-order sweep: charges the legacy 33-launch sequence
/// (per axis: WAVESPEED, then per variable FLUX + UPDATE), then runs
/// all three axis updates for each y–z tile in one cache-resident
/// pass, writing the target slab `u0` through row guards.
pub fn sweep(
    state: &mut HydroState,
    exec: &mut Executor,
    clock: &mut RankClock,
    dt: f64,
) -> Result<(), GpuError> {
    for axis in 0..3 {
        exec.charge3(clock, &kernels::WAVESPEED, state.face_dims(axis))?;
        for _var in 0..NCONS {
            exec.charge3(clock, &kernels::FLUX, state.face_dims(axis))?;
            exec.charge3(clock, &kernels::UPDATE, state.ext())?;
        }
    }
    if exec.fidelity != Fidelity::Full {
        return Ok(());
    }
    let ext = state.ext();
    let dims = state.u.dims();
    let g = state.sub.ghost;
    let n0 = ext[0];
    let scale = dt / state.dx();
    let tiles = TileSet2::new(ext[1], ext[2], state.tile);
    let (u, prim, u0) = (&state.u, &state.prim, &mut state.u0);
    let u_slab = u.slab();
    let prim_slab = prim.slab();
    let rows = DisjointRowsMut::new(u0.slab_mut(), dims[0]);
    exec.run_tiles(&tiles, |tile| {
        // x sweep: faces lie along the row, one pass per (j, k).
        let mut ws = vec![0.0; n0 + 1];
        let mut fx = vec![0.0; n0 + 1];
        for k in tile.k0..tile.k1 {
            for j in tile.j0..tile.j1 {
                let (aj, ak) = (j + g, k + g);
                let va = row_of(prim_slab, dims, VX, aj, ak);
                let cs = row_of(prim_slab, dims, CS, aj, ak);
                let p = row_of(prim_slab, dims, PR, aj, ak);
                x_wavespeed_row(va, cs, g, &mut ws);
                for var in 0..NCONS {
                    let q = row_of(u_slab, dims, var, aj, ak);
                    x_flux_row(var, q, va, p, &ws, g, &mut fx);
                    let mut tgt = rows.claim(row_index(dims, var, aj, ak));
                    update_row(&mut tgt[..], g, scale, &fx[..n0], &fx[1..]);
                }
            }
        }
        // Transverse sweeps: walk faces along the transverse axis with
        // a prev/cur flux-row pair, so each face is computed once per
        // tile and each zone updates as soon as both its faces exist.
        let mut ws = vec![0.0; n0];
        let mut prev: Vec<Vec<f64>> = (0..NCONS).map(|_| vec![0.0; n0]).collect();
        let mut cur: Vec<Vec<f64>> = (0..NCONS).map(|_| vec![0.0; n0]).collect();
        // y sweep (axis 1): face jf sits between allocated rows
        // jf+g−1 and jf+g.
        for k in tile.k0..tile.k1 {
            let ak = k + g;
            for jf in tile.j0..=tile.j1 {
                let (jl, jr) = (jf + g - 1, jf + g);
                let va_l = owned_row(prim_slab, dims, g, VX + 1, jl, ak);
                let va_r = owned_row(prim_slab, dims, g, VX + 1, jr, ak);
                let cs_l = owned_row(prim_slab, dims, g, CS, jl, ak);
                let cs_r = owned_row(prim_slab, dims, g, CS, jr, ak);
                let p_l = owned_row(prim_slab, dims, g, PR, jl, ak);
                let p_r = owned_row(prim_slab, dims, g, PR, jr, ak);
                t_wavespeed_row(va_l, va_r, cs_l, cs_r, &mut ws);
                for (var, fxr) in cur.iter_mut().enumerate() {
                    let q_l = owned_row(u_slab, dims, g, var, jl, ak);
                    let q_r = owned_row(u_slab, dims, g, var, jr, ak);
                    t_flux_row(var, 1, q_l, q_r, va_l, va_r, p_l, p_r, &ws, fxr);
                }
                if jf > tile.j0 {
                    let aj = jf - 1 + g;
                    for (var, (f_lo, f_hi)) in prev.iter().zip(cur.iter()).enumerate() {
                        let mut tgt = rows.claim(row_index(dims, var, aj, ak));
                        update_row(&mut tgt[..], g, scale, f_lo, f_hi);
                    }
                }
                std::mem::swap(&mut prev, &mut cur);
            }
        }
        // z sweep (axis 2): j outer, kf inner, so prev/cur walk faces
        // of constant j.
        for j in tile.j0..tile.j1 {
            let aj = j + g;
            for kf in tile.k0..=tile.k1 {
                let (kl, kr) = (kf + g - 1, kf + g);
                let va_l = owned_row(prim_slab, dims, g, VX + 2, aj, kl);
                let va_r = owned_row(prim_slab, dims, g, VX + 2, aj, kr);
                let cs_l = owned_row(prim_slab, dims, g, CS, aj, kl);
                let cs_r = owned_row(prim_slab, dims, g, CS, aj, kr);
                let p_l = owned_row(prim_slab, dims, g, PR, aj, kl);
                let p_r = owned_row(prim_slab, dims, g, PR, aj, kr);
                t_wavespeed_row(va_l, va_r, cs_l, cs_r, &mut ws);
                for (var, fxr) in cur.iter_mut().enumerate() {
                    let q_l = owned_row(u_slab, dims, g, var, aj, kl);
                    let q_r = owned_row(u_slab, dims, g, var, aj, kr);
                    t_flux_row(var, 2, q_l, q_r, va_l, va_r, p_l, p_r, &ws, fxr);
                }
                if kf > tile.k0 {
                    let ak = kf - 1 + g;
                    for (var, (f_lo, f_hi)) in prev.iter().zip(cur.iter()).enumerate() {
                        let mut tgt = rows.claim(row_index(dims, var, aj, ak));
                        update_row(&mut tgt[..], g, scale, f_lo, f_hi);
                    }
                }
                std::mem::swap(&mut prev, &mut cur);
            }
        }
    });
    Ok(())
}

// ---------------------------------------------------------------------
// MUSCL sweep (legacy: muscl::sweep_muscl, 17 kernels per axis).
// ---------------------------------------------------------------------

/// Minmod-limited face reconstruction along x for one row of one
/// variable: face `f` is between zones `f+g−1` and `f+g`.
fn x_recon_row(q: &[f64], g: usize, ql: &mut [f64], qr: &mut [f64]) {
    for f in 0..ql.len() {
        let q_lm = q[f + g - 2];
        let q_l = q[f + g - 1];
        let q_r = q[f + g];
        let q_rp = q[f + g + 1];
        let slope_l = minmod(q_l - q_lm, q_r - q_l);
        let slope_r = minmod(q_r - q_l, q_rp - q_r);
        ql[f] = q_l + 0.5 * slope_l;
        qr[f] = q_r - 0.5 * slope_r;
    }
}

/// Minmod-limited reconstruction across a transverse face from the
/// four bracketing i-rows.
fn t_recon_row(
    q_lm: &[f64],
    q_l: &[f64],
    q_r: &[f64],
    q_rp: &[f64],
    ql: &mut [f64],
    qr: &mut [f64],
) {
    for i in 0..ql.len() {
        let slope_l = minmod(q_l[i] - q_lm[i], q_r[i] - q_l[i]);
        let slope_r = minmod(q_r[i] - q_l[i], q_rp[i] - q_r[i]);
        ql[i] = q_l[i] + 0.5 * slope_l;
        qr[i] = q_r[i] - 0.5 * slope_r;
    }
}

/// Primitives of one reconstructed face state — the legacy FACE_PRIMS
/// closure verbatim.
fn face_prim(axis: usize, rho: f64, mx: f64, my: f64, mz: f64, en: f64) -> (f64, f64, f64) {
    let r = rho.max(RHO_FLOOR);
    let v = [mx / r, my / r, mz / r];
    let ke = 0.5 * r * (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]);
    let p = ((GAMMA - 1.0) * (en - ke)).max(P_FLOOR);
    let cs = (GAMMA * p / r).sqrt();
    (v[axis], p, cs)
}

/// Face primitives + max wavespeed for one row of faces from the
/// reconstructed left/right conserved states.
#[allow(clippy::too_many_arguments)]
fn face_prims_rows(
    axis: usize,
    ql: &[Vec<f64>],
    qr: &[Vec<f64>],
    val: &mut [f64],
    var_: &mut [f64],
    pl: &mut [f64],
    pr: &mut [f64],
    smax: &mut [f64],
) {
    for f in 0..val.len() {
        let (vl, p_l, cl) = face_prim(axis, ql[RHO][f], ql[MX][f], ql[MY][f], ql[MZ][f], ql[EN][f]);
        let (vr, p_r, cr) = face_prim(axis, qr[RHO][f], qr[MX][f], qr[MY][f], qr[MZ][f], qr[EN][f]);
        val[f] = vl;
        var_[f] = vr;
        pl[f] = p_l;
        pr[f] = p_r;
        smax[f] = (vl.abs() + cl).max(vr.abs() + cr);
    }
}

/// Rusanov flux of one variable from reconstructed face states.
#[allow(clippy::too_many_arguments)]
fn face_flux_row(
    var: usize,
    axis: usize,
    ql: &[f64],
    qr: &[f64],
    val: &[f64],
    var_: &[f64],
    pl: &[f64],
    pr: &[f64],
    smax: &[f64],
    fx: &mut [f64],
) {
    for f in 0..fx.len() {
        let fl = phys_flux_axis(var, axis, ql[f], val[f], pl[f]);
        let fr = phys_flux_axis(var, axis, qr[f], var_[f], pr[f]);
        fx[f] = 0.5 * (fl + fr) - 0.5 * smax[f] * (qr[f] - ql[f]);
    }
}

/// Fused second-order MUSCL sweep: charges the legacy per-axis
/// sequence (5 MUSCL_RECON, FACE_PRIMS, then per variable FLUX +
/// UPDATE), then runs all three axes tile by tile. Requires
/// `state.sub.ghost >= 2`, like the legacy path.
pub fn sweep_muscl(
    state: &mut HydroState,
    exec: &mut Executor,
    clock: &mut RankClock,
    dt: f64,
) -> Result<(), GpuError> {
    assert!(
        state.sub.ghost >= 2,
        "MUSCL needs two ghost layers (got {})",
        state.sub.ghost
    );
    for axis in 0..3 {
        let fd = state.face_dims(axis);
        for _var in 0..NCONS {
            exec.charge3(clock, &kernels::MUSCL_RECON, fd)?;
        }
        exec.charge3(clock, &kernels::FACE_PRIMS, fd)?;
        for _var in 0..NCONS {
            exec.charge3(clock, &kernels::FLUX, fd)?;
            exec.charge3(clock, &kernels::UPDATE, state.ext())?;
        }
    }
    if exec.fidelity != Fidelity::Full {
        return Ok(());
    }
    let ext = state.ext();
    let dims = state.u.dims();
    let g = state.sub.ghost;
    let n0 = ext[0];
    let scale = dt / state.dx();
    let tiles = TileSet2::new(ext[1], ext[2], state.tile);
    let (u, u0) = (&state.u, &mut state.u0);
    let u_slab = u.slab();
    let rows = DisjointRowsMut::new(u0.slab_mut(), dims[0]);
    exec.run_tiles(&tiles, |tile| {
        // x sweep.
        let nf = n0 + 1;
        let mut ql: Vec<Vec<f64>> = (0..NCONS).map(|_| vec![0.0; nf]).collect();
        let mut qr: Vec<Vec<f64>> = (0..NCONS).map(|_| vec![0.0; nf]).collect();
        let mut val = vec![0.0; nf];
        let mut var_ = vec![0.0; nf];
        let mut pl = vec![0.0; nf];
        let mut pr = vec![0.0; nf];
        let mut smax = vec![0.0; nf];
        let mut fx = vec![0.0; nf];
        for k in tile.k0..tile.k1 {
            for j in tile.j0..tile.j1 {
                let (aj, ak) = (j + g, k + g);
                for (var, (qlr, qrr)) in ql.iter_mut().zip(qr.iter_mut()).enumerate() {
                    let q = row_of(u_slab, dims, var, aj, ak);
                    x_recon_row(q, g, qlr, qrr);
                }
                face_prims_rows(
                    0, &ql, &qr, &mut val, &mut var_, &mut pl, &mut pr, &mut smax,
                );
                for (var, (qlr, qrr)) in ql.iter().zip(qr.iter()).enumerate() {
                    face_flux_row(var, 0, qlr, qrr, &val, &var_, &pl, &pr, &smax, &mut fx);
                    let mut tgt = rows.claim(row_index(dims, var, aj, ak));
                    update_row(&mut tgt[..], g, scale, &fx[..n0], &fx[1..]);
                }
            }
        }
        // Transverse sweeps share prev/cur flux rows like the
        // first-order path; reconstruction reads the four bracketing
        // rows of each face.
        let mut ql: Vec<Vec<f64>> = (0..NCONS).map(|_| vec![0.0; n0]).collect();
        let mut qr: Vec<Vec<f64>> = (0..NCONS).map(|_| vec![0.0; n0]).collect();
        let mut val = vec![0.0; n0];
        let mut var_ = vec![0.0; n0];
        let mut pl = vec![0.0; n0];
        let mut pr = vec![0.0; n0];
        let mut smax = vec![0.0; n0];
        let mut prev: Vec<Vec<f64>> = (0..NCONS).map(|_| vec![0.0; n0]).collect();
        let mut cur: Vec<Vec<f64>> = (0..NCONS).map(|_| vec![0.0; n0]).collect();
        // y sweep.
        for k in tile.k0..tile.k1 {
            let ak = k + g;
            for jf in tile.j0..=tile.j1 {
                for (var, (qlr, qrr)) in ql.iter_mut().zip(qr.iter_mut()).enumerate() {
                    let q_lm = owned_row(u_slab, dims, g, var, jf + g - 2, ak);
                    let q_l = owned_row(u_slab, dims, g, var, jf + g - 1, ak);
                    let q_r = owned_row(u_slab, dims, g, var, jf + g, ak);
                    let q_rp = owned_row(u_slab, dims, g, var, jf + g + 1, ak);
                    t_recon_row(q_lm, q_l, q_r, q_rp, qlr, qrr);
                }
                face_prims_rows(
                    1, &ql, &qr, &mut val, &mut var_, &mut pl, &mut pr, &mut smax,
                );
                for (var, (fxr, (qlr, qrr))) in
                    cur.iter_mut().zip(ql.iter().zip(qr.iter())).enumerate()
                {
                    face_flux_row(var, 1, qlr, qrr, &val, &var_, &pl, &pr, &smax, fxr);
                }
                if jf > tile.j0 {
                    let aj = jf - 1 + g;
                    for (var, (f_lo, f_hi)) in prev.iter().zip(cur.iter()).enumerate() {
                        let mut tgt = rows.claim(row_index(dims, var, aj, ak));
                        update_row(&mut tgt[..], g, scale, f_lo, f_hi);
                    }
                }
                std::mem::swap(&mut prev, &mut cur);
            }
        }
        // z sweep.
        for j in tile.j0..tile.j1 {
            let aj = j + g;
            for kf in tile.k0..=tile.k1 {
                for (var, (qlr, qrr)) in ql.iter_mut().zip(qr.iter_mut()).enumerate() {
                    let q_lm = owned_row(u_slab, dims, g, var, aj, kf + g - 2);
                    let q_l = owned_row(u_slab, dims, g, var, aj, kf + g - 1);
                    let q_r = owned_row(u_slab, dims, g, var, aj, kf + g);
                    let q_rp = owned_row(u_slab, dims, g, var, aj, kf + g + 1);
                    t_recon_row(q_lm, q_l, q_r, q_rp, qlr, qrr);
                }
                face_prims_rows(
                    2, &ql, &qr, &mut val, &mut var_, &mut pl, &mut pr, &mut smax,
                );
                for (var, (fxr, (qlr, qrr))) in
                    cur.iter_mut().zip(ql.iter().zip(qr.iter())).enumerate()
                {
                    face_flux_row(var, 2, qlr, qrr, &val, &var_, &pl, &pr, &smax, fxr);
                }
                if kf > tile.k0 {
                    let ak = kf - 1 + g;
                    for (var, (f_lo, f_hi)) in prev.iter().zip(cur.iter()).enumerate() {
                        let mut tgt = rows.claim(row_index(dims, var, aj, ak));
                        update_row(&mut tgt[..], g, scale, f_lo, f_hi);
                    }
                }
                std::mem::swap(&mut prev, &mut cur);
            }
        }
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{self, PerturbedConfig};
    use hsim_mesh::{GlobalGrid, Subdomain};
    use hsim_raja::{CpuModel, Target};

    fn perturbed(n: usize, ghost: usize) -> HydroState {
        let grid = GlobalGrid::new(n, n, n);
        let sub = Subdomain::new([0, 0, 0], [n, n, n], ghost);
        let mut st = HydroState::new(grid, sub, Fidelity::Full);
        workload::init(&mut st, &PerturbedConfig::default());
        for var in 0..NCONS {
            for axis in 0..3 {
                st.u.reflect_into_ghost(var, axis, hsim_mesh::Side::Low, 1.0);
                st.u.reflect_into_ghost(var, axis, hsim_mesh::Side::High, 1.0);
            }
        }
        let u = st.u.clone();
        st.u0.copy_from(&u);
        st
    }

    fn exec_seq() -> (Executor, RankClock) {
        (
            Executor::new(Target::CpuSeq, CpuModel::haswell_fixed(), Fidelity::Full),
            RankClock::new(0),
        )
    }

    fn assert_slabs_identical(a: &[f64], b: &[f64], what: &str) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{what}: slab element {i} differs: {x} vs {y}"
            );
        }
    }

    #[test]
    fn fused_primitives_match_legacy_bitwise() {
        let mut legacy = perturbed(10, 1);
        let mut fused = perturbed(10, 1);
        let (mut e1, mut c1) = exec_seq();
        let (mut e2, mut c2) = exec_seq();
        crate::eos::primitives(&mut legacy, &mut e1, &mut c1).unwrap();
        primitives(&mut fused, &mut e2, &mut c2).unwrap();
        assert_slabs_identical(legacy.prim.slab(), fused.prim.slab(), "primitives");
        assert_eq!(c1.now(), c2.now(), "charge parity");
        assert_eq!(e1.registry.total_launches(), e2.registry.total_launches());
    }

    #[test]
    fn fused_sweep_matches_legacy_bitwise() {
        let mut legacy = perturbed(10, 1);
        let mut fused = perturbed(10, 1);
        let (mut e1, mut c1) = exec_seq();
        let (mut e2, mut c2) = exec_seq();
        crate::eos::primitives(&mut legacy, &mut e1, &mut c1).unwrap();
        crate::flux::sweep(&mut legacy, &mut e1, &mut c1, 0.004).unwrap();
        primitives(&mut fused, &mut e2, &mut c2).unwrap();
        sweep(&mut fused, &mut e2, &mut c2, 0.004).unwrap();
        assert_slabs_identical(legacy.u0.slab(), fused.u0.slab(), "sweep u0");
        assert_eq!(c1.now(), c2.now(), "charge parity");
        assert_eq!(e1.registry.total_launches(), e2.registry.total_launches());
    }

    #[test]
    fn fused_sweep_is_tile_shape_invariant_and_parallel_safe() {
        let (mut e1, mut c1) = exec_seq();
        let mut reference = perturbed(11, 1);
        primitives(&mut reference, &mut e1, &mut c1).unwrap();
        sweep(&mut reference, &mut e1, &mut c1, 0.002).unwrap();
        for (tile, threads) in [([1, 1], 1), ([3, 2], 3), ([16, 16], 4), ([5, 11], 2)] {
            let mut st = perturbed(11, 1);
            st.tile = tile;
            let mut exec = Executor::new(
                Target::cpu_parallel(threads),
                CpuModel::haswell_fixed(),
                Fidelity::Full,
            );
            let mut clock = RankClock::new(0);
            primitives(&mut st, &mut exec, &mut clock).unwrap();
            sweep(&mut st, &mut exec, &mut clock, 0.002).unwrap();
            assert_slabs_identical(
                reference.u0.slab(),
                st.u0.slab(),
                &format!("tile {tile:?} threads {threads}"),
            );
        }
    }

    #[test]
    fn fused_muscl_matches_legacy_bitwise() {
        let mut legacy = perturbed(9, 2);
        let mut fused = perturbed(9, 2);
        let (mut e1, mut c1) = exec_seq();
        let (mut e2, mut c2) = exec_seq();
        crate::eos::primitives(&mut legacy, &mut e1, &mut c1).unwrap();
        crate::muscl::sweep_muscl(&mut legacy, &mut e1, &mut c1, 0.003).unwrap();
        primitives(&mut fused, &mut e2, &mut c2).unwrap();
        sweep_muscl(&mut fused, &mut e2, &mut c2, 0.003).unwrap();
        assert_slabs_identical(legacy.u0.slab(), fused.u0.slab(), "muscl u0");
        assert_eq!(c1.now(), c2.now(), "charge parity");
        assert_eq!(e1.registry.total_launches(), e2.registry.total_launches());
    }

    #[test]
    fn fused_save_and_combine_match_legacy_semantics() {
        let mut st = perturbed(8, 1);
        let (mut exec, mut clock) = exec_seq();
        st.u0.fill(RHO, 3.25);
        save_state(&mut st, &mut exec, &mut clock).unwrap();
        assert_slabs_identical(st.u.slab(), st.u0.slab(), "save");
        // combine of identical slabs is a fixed point: ½a + ½a = a.
        let before = st.u0.slab().to_vec();
        combine(&mut st, &mut exec, &mut clock).unwrap();
        assert_slabs_identical(&before, st.u0.slab(), "combine fixed point");
        // 5 SAVE_STATE + 5 COMBINE launches.
        assert_eq!(exec.registry.total_launches(), 10);
    }

    #[test]
    fn fused_sweep_charges_33_launches() {
        let mut st = perturbed(6, 1);
        let (mut exec, mut clock) = exec_seq();
        primitives(&mut st, &mut exec, &mut clock).unwrap();
        exec.registry.clear();
        sweep(&mut st, &mut exec, &mut clock, 0.01).unwrap();
        assert_eq!(exec.registry.total_launches(), 33);
    }

    #[test]
    fn cost_only_fused_path_charges_without_allocating() {
        let grid = GlobalGrid::new(48, 48, 48);
        let sub = Subdomain::new([0, 0, 0], [48, 48, 48], 1);
        let mut st = HydroState::new(grid, sub, Fidelity::CostOnly);
        let mut exec = Executor::new(
            Target::CpuSeq,
            CpuModel::haswell_fixed(),
            Fidelity::CostOnly,
        );
        let mut clock = RankClock::new(0);
        primitives(&mut st, &mut exec, &mut clock).unwrap();
        sweep(&mut st, &mut exec, &mut clock, 0.01).unwrap();
        save_state(&mut st, &mut exec, &mut clock).unwrap();
        combine(&mut st, &mut exec, &mut clock).unwrap();
        assert!(clock.now().as_nanos() > 0);
        assert_eq!(exec.registry.total_launches(), 3 + 33 + 5 + 5);
        assert!(st.u.var(RHO).len() < 64, "no full-size allocation");
    }
}
