//! Fused cache-blocked hydro kernels — the production CPU path.
//!
//! The legacy modules ([`crate::eos`], [`crate::flux`],
//! [`crate::muscl`], and the per-variable save/combine loops) launch
//! one fine-grained kernel per (pass, variable, axis), so every pass
//! streams the whole grid through cache again. This module fuses each
//! multi-kernel stage into a single pass over y–z **tiles**: a tile's
//! x-rows of every variable are loaded once, all passes for that tile
//! run while the rows are cache-resident, and the tile writes its
//! outputs through [`DisjointRowsMut`] row guards.
//!
//! Two invariants make the fusion invisible to everything downstream:
//!
//! 1. **Charge parity.** Each fused stage first replays the *exact*
//!    legacy launch sequence through [`Executor::charge3`] — same
//!    kernel descriptors, shapes, and order — so virtual time, launch
//!    counts, telemetry spans, and therefore every figure and trace
//!    byte are identical to the per-pass path. [`Executor::run_tiles`]
//!    itself charges nothing.
//! 2. **Bitwise identity.** Per zone, the fused arithmetic performs
//!    the same f64 operations in the same order as the legacy kernels
//!    (helpers below mirror the legacy loop bodies expression for
//!    expression), zones are independent within a pass, and per-zone
//!    accumulation keeps the legacy axis-then-variable order. Faces on
//!    tile seams are recomputed by both neighboring tiles — pure
//!    functions of unmodified inputs, so both compute the same bits.
//!    Tile shape and worker count therefore never change results; the
//!    property tests in `tests/` check this exhaustively.
//!
//! Row helpers live at module scope (not inside tile bodies): the
//! `tile-bounds` tidy lint forbids per-element indexing inside
//! `run_tiles`/`run_tiles_collect` bodies, so bodies only carve ranges
//! and call helpers.
//!
//! The row helpers themselves are written for autovectorization:
//! every loop first re-borrows its operands as exact-length subslices
//! (so the compiler proves all bounds once, outside the loop), the
//! physical-flux `match` arm is selected once per row instead of per
//! element (see `rusanov_row_var` — each arm keeps the legacy
//! per-element arithmetic, including the `+ 0.0` of the
//! perpendicular-momentum arm), and per-tile scratch is one
//! contiguous [`ScratchArena`] allocation carved into dense slabs
//! instead of a `Vec<Vec<f64>>` per plane.

use hsim_gpu::GpuError;
use hsim_raja::{DisjointRowsMut, Executor, Fidelity, TileSet2};
use hsim_time::RankClock;

use crate::kernels;
use crate::muscl::minmod;
use crate::state::{
    HydroState, ScratchArena, CS, EN, GAMMA, MX, MY, MZ, NCONS, PR, P_FLOOR, RHO, RHO_FLOOR, VX,
};

/// One variable's allocated x-row of a var-major slab at allocated
/// transverse coordinates `(j, k)`.
#[inline]
fn row_of(slab: &[f64], dims: [usize; 3], v: usize, j: usize, k: usize) -> &[f64] {
    let start = (v * dims[1] * dims[2] + k * dims[1] + j) * dims[0];
    &slab[start..start + dims[0]]
}

/// The owned-i interior of [`row_of`] (ghost ends trimmed).
#[inline]
fn owned_row(slab: &[f64], dims: [usize; 3], g: usize, v: usize, j: usize, k: usize) -> &[f64] {
    let row = row_of(slab, dims, v, j, k);
    &row[g..row.len() - g]
}

/// Global row index of variable `v`'s x-row at allocated `(j, k)` in a
/// [`DisjointRowsMut`] over the slab with `row_len = dims[0]`.
#[inline]
fn row_index(dims: [usize; 3], v: usize, j: usize, k: usize) -> usize {
    v * dims[1] * dims[2] + k * dims[1] + j
}

// ---------------------------------------------------------------------
// Primitive recovery (legacy: eos::primitives, 3 kernels).
// ---------------------------------------------------------------------

/// One row of the fused primitive recovery. Mirrors the legacy
/// VELOCITY → PRESSURE → SOUND_SPEED chain per element: the stored
/// intermediate values the legacy kernels re-read are recomputed here
/// from identical expressions, so the outputs agree bitwise.
#[allow(clippy::too_many_arguments)]
fn prim_row(
    rho: &[f64],
    mx: &[f64],
    my: &[f64],
    mz: &[f64],
    en: &[f64],
    vx: &mut [f64],
    vy: &mut [f64],
    vz: &mut [f64],
    p: &mut [f64],
    cs: &mut [f64],
) {
    let n = rho.len();
    let (mx, my, mz, en) = (&mx[..n], &my[..n], &mz[..n], &en[..n]);
    let (vx, vy, vz) = (&mut vx[..n], &mut vy[..n], &mut vz[..n]);
    let (p, cs) = (&mut p[..n], &mut cs[..n]);
    for i in 0..n {
        let r = rho[i].max(RHO_FLOOR);
        let ux = mx[i] / r;
        let uy = my[i] / r;
        let uz = mz[i] / r;
        vx[i] = ux;
        vy[i] = uy;
        vz[i] = uz;
        let ke = 0.5 * r * (ux * ux + uy * uy + uz * uz);
        let pv = ((GAMMA - 1.0) * (en[i] - ke)).max(P_FLOOR);
        p[i] = pv;
        cs[i] = (GAMMA * pv / r).sqrt();
    }
}

/// Fused primitive recovery: charges the legacy VELOCITY, PRESSURE,
/// SOUND_SPEED launches, then fills all five primitive variables in
/// one tiled pass over the allocated y–z plane.
pub fn primitives(
    state: &mut HydroState,
    exec: &mut Executor,
    clock: &mut RankClock,
) -> Result<(), GpuError> {
    let ext = state.ext_all();
    exec.charge3(clock, &kernels::VELOCITY, ext)?;
    exec.charge3(clock, &kernels::PRESSURE, ext)?;
    exec.charge3(clock, &kernels::SOUND_SPEED, ext)?;
    if exec.fidelity != Fidelity::Full {
        return Ok(());
    }
    let dims = state.u.dims();
    let tiles = TileSet2::new(dims[1], dims[2], state.tile);
    let (u, prim) = (&state.u, &mut state.prim);
    let u_slab = u.slab();
    let rows = DisjointRowsMut::new(prim.slab_mut(), dims[0]);
    exec.run_tiles(&tiles, |tile| {
        for k in tile.k0..tile.k1 {
            for j in tile.j0..tile.j1 {
                let rho = row_of(u_slab, dims, RHO, j, k);
                let mx = row_of(u_slab, dims, MX, j, k);
                let my = row_of(u_slab, dims, MY, j, k);
                let mz = row_of(u_slab, dims, MZ, j, k);
                let en = row_of(u_slab, dims, EN, j, k);
                let mut vx = rows.claim(row_index(dims, VX, j, k));
                let mut vy = rows.claim(row_index(dims, VX + 1, j, k));
                let mut vz = rows.claim(row_index(dims, VX + 2, j, k));
                let mut p = rows.claim(row_index(dims, PR, j, k));
                let mut cs = rows.claim(row_index(dims, CS, j, k));
                prim_row(
                    rho,
                    mx,
                    my,
                    mz,
                    en,
                    &mut vx[..],
                    &mut vy[..],
                    &mut vz[..],
                    &mut p[..],
                    &mut cs[..],
                );
            }
        }
    });
    Ok(())
}

// ---------------------------------------------------------------------
// Save / combine (legacy: cycle-private per-variable loops, 5 kernels).
// ---------------------------------------------------------------------

/// Fused RK snapshot `u0 ← u`: charges the five legacy SAVE_STATE
/// launches, then copies the whole slab once.
pub fn save_state(
    st: &mut HydroState,
    exec: &mut Executor,
    clock: &mut RankClock,
) -> Result<(), GpuError> {
    let ext = st.ext_all();
    for _ in 0..NCONS {
        exec.charge3(clock, &kernels::SAVE_STATE, ext)?;
    }
    if exec.fidelity == Fidelity::Full {
        let (u, u0) = (&st.u, &mut st.u0);
        u0.copy_from(u);
    }
    Ok(())
}

/// Fused Heun combine `u0 ← ½u0 + ½u`: charges the five legacy
/// COMBINE launches, then runs the element-wise average once over the
/// whole slab (same per-element expression as the legacy kernel).
pub fn combine(
    st: &mut HydroState,
    exec: &mut Executor,
    clock: &mut RankClock,
) -> Result<(), GpuError> {
    let ext = st.ext_all();
    for _ in 0..NCONS {
        exec.charge3(clock, &kernels::COMBINE, ext)?;
    }
    if exec.fidelity == Fidelity::Full {
        let (u, u0) = (&st.u, &mut st.u0);
        for (dst, src) in u0.slab_mut().iter_mut().zip(u.slab()) {
            *dst = 0.5 * *dst + 0.5 * *src;
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// First-order sweep (legacy: flux::sweep, 33 kernels).
// ---------------------------------------------------------------------

/// Per-face max wavespeed for one row of faces, given the zone rows on
/// either side of the face line (`_l`/`_r`). Along x these are the
/// `g−1`- and `g`-shifted windows of the same row; transverse they are
/// the owned-i rows of the two bracketing planes.
fn wavespeed_row(va_l: &[f64], va_r: &[f64], cs_l: &[f64], cs_r: &[f64], ws: &mut [f64]) {
    let n = ws.len();
    let (va_l, va_r) = (&va_l[..n], &va_r[..n]);
    let (cs_l, cs_r) = (&cs_l[..n], &cs_r[..n]);
    for i in 0..n {
        let sl = va_l[i].abs() + cs_l[i];
        let sr = va_r[i].abs() + cs_r[i];
        ws[i] = sl.max(sr);
    }
}

/// Rusanov flux for one row of faces with the physical flux supplied
/// as a per-element closure, monomorphized per arm by
/// [`rusanov_row_var`]: the arm dispatch happens once per row, so the
/// element loop is branch-free and runs over exact-length subslices.
#[allow(clippy::too_many_arguments)]
#[inline]
fn rusanov_row(
    q_l: &[f64],
    q_r: &[f64],
    va_l: &[f64],
    va_r: &[f64],
    p_l: &[f64],
    p_r: &[f64],
    ws: &[f64],
    fx: &mut [f64],
    flux: impl Fn(f64, f64, f64) -> f64,
) {
    let n = fx.len();
    let (q_l, q_r) = (&q_l[..n], &q_r[..n]);
    let (va_l, va_r) = (&va_l[..n], &va_r[..n]);
    let (p_l, p_r) = (&p_l[..n], &p_r[..n]);
    let ws = &ws[..n];
    for i in 0..n {
        let fl = flux(q_l[i], va_l[i], p_l[i]);
        let fr = flux(q_r[i], va_r[i], p_r[i]);
        fx[i] = 0.5 * (fl + fr) - 0.5 * ws[i] * (q_r[i] - q_l[i]);
    }
}

/// [`rusanov_row`] with the physical-flux arm of
/// [`crate::flux::phys_flux`] / [`crate::muscl::phys_flux_axis`]
/// selected once for (`var`, `axis`). Each arm's per-element
/// arithmetic is the legacy expression verbatim — note the perpendicular
/// momentum arm keeps the legacy `+ 0.0` (which maps `-0.0` to `+0.0`)
/// so outputs stay bitwise identical.
#[allow(clippy::too_many_arguments)]
fn rusanov_row_var(
    var: usize,
    axis: usize,
    q_l: &[f64],
    q_r: &[f64],
    va_l: &[f64],
    va_r: &[f64],
    p_l: &[f64],
    p_r: &[f64],
    ws: &[f64],
    fx: &mut [f64],
) {
    match var {
        RHO => rusanov_row(q_l, q_r, va_l, va_r, p_l, p_r, ws, fx, |q, va, _p| q * va),
        EN => rusanov_row(q_l, q_r, va_l, va_r, p_l, p_r, ws, fx, |q, va, p| {
            (q + p) * va
        }),
        _ if var - MX == axis => rusanov_row(q_l, q_r, va_l, va_r, p_l, p_r, ws, fx, |q, va, p| {
            q * va + p
        }),
        _ => rusanov_row(q_l, q_r, va_l, va_r, p_l, p_r, ws, fx, |q, va, _p| {
            q * va + 0.0
        }),
    }
}

/// Flux-difference update of one owned row: `tgt[g+i] -= scale·(f_hi −
/// f_lo)` — the legacy UPDATE arithmetic, over exact-length windows.
fn update_row(tgt: &mut [f64], g: usize, scale: f64, f_lo: &[f64], f_hi: &[f64]) {
    let n = f_lo.len();
    let tgt = &mut tgt[g..g + n];
    let f_hi = &f_hi[..n];
    for i in 0..n {
        tgt[i] -= scale * (f_hi[i] - f_lo[i]);
    }
}

/// Fused first-order sweep: charges the legacy 33-launch sequence
/// (per axis: WAVESPEED, then per variable FLUX + UPDATE), then runs
/// all three axis updates for each y–z tile in one cache-resident
/// pass, writing the target slab `u0` through row guards.
pub fn sweep(
    state: &mut HydroState,
    exec: &mut Executor,
    clock: &mut RankClock,
    dt: f64,
) -> Result<(), GpuError> {
    for axis in 0..3 {
        exec.charge3(clock, &kernels::WAVESPEED, state.face_dims(axis))?;
        for _var in 0..NCONS {
            exec.charge3(clock, &kernels::FLUX, state.face_dims(axis))?;
            exec.charge3(clock, &kernels::UPDATE, state.ext())?;
        }
    }
    if exec.fidelity != Fidelity::Full {
        return Ok(());
    }
    let ext = state.ext();
    let dims = state.u.dims();
    let g = state.sub.ghost;
    let n0 = ext[0];
    let scale = dt / state.dx();
    let tiles = TileSet2::new(ext[1], ext[2], state.tile);
    let (u, prim, u0) = (&state.u, &state.prim, &mut state.u0);
    let u_slab = u.slab();
    let prim_slab = prim.slab();
    let rows = DisjointRowsMut::new(u0.slab_mut(), dims[0]);
    exec.run_tiles(&tiles, |tile| {
        // Tile-contiguous scratch: face wavespeed/flux rows plus the
        // two transverse flux planes, carved from one allocation.
        let mut arena = ScratchArena::zeroed(2 * (n0 + 1) + (1 + 2 * NCONS) * n0);
        let mut carve = arena.carver();
        let ws = carve.take(n0 + 1);
        let fx = carve.take(n0 + 1);
        let tws = carve.take(n0);
        let mut prev = carve.take(NCONS * n0);
        let mut cur = carve.take(NCONS * n0);
        // x sweep: faces lie along the row, one pass per (j, k); face i
        // sits between the g−1- and g-shifted windows of the row.
        for k in tile.k0..tile.k1 {
            for j in tile.j0..tile.j1 {
                let (aj, ak) = (j + g, k + g);
                let va = row_of(prim_slab, dims, VX, aj, ak);
                let cs = row_of(prim_slab, dims, CS, aj, ak);
                let p = row_of(prim_slab, dims, PR, aj, ak);
                wavespeed_row(&va[g - 1..], &va[g..], &cs[g - 1..], &cs[g..], ws);
                for var in 0..NCONS {
                    let q = row_of(u_slab, dims, var, aj, ak);
                    rusanov_row_var(
                        var,
                        0,
                        &q[g - 1..],
                        &q[g..],
                        &va[g - 1..],
                        &va[g..],
                        &p[g - 1..],
                        &p[g..],
                        ws,
                        fx,
                    );
                    let mut tgt = rows.claim(row_index(dims, var, aj, ak));
                    update_row(&mut tgt[..], g, scale, &fx[..n0], &fx[1..]);
                }
            }
        }
        // Transverse sweeps: walk faces along the transverse axis with
        // a prev/cur flux-plane pair, so each face is computed once per
        // tile and each zone updates as soon as both its faces exist.
        // y sweep (axis 1): face jf sits between allocated rows
        // jf+g−1 and jf+g.
        for k in tile.k0..tile.k1 {
            let ak = k + g;
            for jf in tile.j0..=tile.j1 {
                let (jl, jr) = (jf + g - 1, jf + g);
                let va_l = owned_row(prim_slab, dims, g, VX + 1, jl, ak);
                let va_r = owned_row(prim_slab, dims, g, VX + 1, jr, ak);
                let cs_l = owned_row(prim_slab, dims, g, CS, jl, ak);
                let cs_r = owned_row(prim_slab, dims, g, CS, jr, ak);
                let p_l = owned_row(prim_slab, dims, g, PR, jl, ak);
                let p_r = owned_row(prim_slab, dims, g, PR, jr, ak);
                wavespeed_row(va_l, va_r, cs_l, cs_r, tws);
                for (var, fxr) in cur.chunks_exact_mut(n0).enumerate() {
                    let q_l = owned_row(u_slab, dims, g, var, jl, ak);
                    let q_r = owned_row(u_slab, dims, g, var, jr, ak);
                    rusanov_row_var(var, 1, q_l, q_r, va_l, va_r, p_l, p_r, tws, fxr);
                }
                if jf > tile.j0 {
                    let aj = jf - 1 + g;
                    for (var, (f_lo, f_hi)) in
                        prev.chunks_exact(n0).zip(cur.chunks_exact(n0)).enumerate()
                    {
                        let mut tgt = rows.claim(row_index(dims, var, aj, ak));
                        update_row(&mut tgt[..], g, scale, f_lo, f_hi);
                    }
                }
                std::mem::swap(&mut prev, &mut cur);
            }
        }
        // z sweep (axis 2): j outer, kf inner, so prev/cur walk faces
        // of constant j.
        for j in tile.j0..tile.j1 {
            let aj = j + g;
            for kf in tile.k0..=tile.k1 {
                let (kl, kr) = (kf + g - 1, kf + g);
                let va_l = owned_row(prim_slab, dims, g, VX + 2, aj, kl);
                let va_r = owned_row(prim_slab, dims, g, VX + 2, aj, kr);
                let cs_l = owned_row(prim_slab, dims, g, CS, aj, kl);
                let cs_r = owned_row(prim_slab, dims, g, CS, aj, kr);
                let p_l = owned_row(prim_slab, dims, g, PR, aj, kl);
                let p_r = owned_row(prim_slab, dims, g, PR, aj, kr);
                wavespeed_row(va_l, va_r, cs_l, cs_r, tws);
                for (var, fxr) in cur.chunks_exact_mut(n0).enumerate() {
                    let q_l = owned_row(u_slab, dims, g, var, aj, kl);
                    let q_r = owned_row(u_slab, dims, g, var, aj, kr);
                    rusanov_row_var(var, 2, q_l, q_r, va_l, va_r, p_l, p_r, tws, fxr);
                }
                if kf > tile.k0 {
                    let ak = kf - 1 + g;
                    for (var, (f_lo, f_hi)) in
                        prev.chunks_exact(n0).zip(cur.chunks_exact(n0)).enumerate()
                    {
                        let mut tgt = rows.claim(row_index(dims, var, aj, ak));
                        update_row(&mut tgt[..], g, scale, f_lo, f_hi);
                    }
                }
                std::mem::swap(&mut prev, &mut cur);
            }
        }
    });
    Ok(())
}

// ---------------------------------------------------------------------
// MUSCL sweep (legacy: muscl::sweep_muscl, 17 kernels per axis).
// ---------------------------------------------------------------------

/// Minmod-limited face reconstruction for one row of faces from the
/// four bracketing zone rows (along x these are shifted windows of
/// one row; transverse they are the four bracketing planes' rows).
/// The limiter is the branchless select form of [`minmod`], and all
/// operands are exact-length subslices.
fn recon_row(q_lm: &[f64], q_l: &[f64], q_r: &[f64], q_rp: &[f64], ql: &mut [f64], qr: &mut [f64]) {
    let n = ql.len();
    let (q_lm, q_l) = (&q_lm[..n], &q_l[..n]);
    let (q_r, q_rp) = (&q_r[..n], &q_rp[..n]);
    let qr = &mut qr[..n];
    for i in 0..n {
        let slope_l = minmod(q_l[i] - q_lm[i], q_r[i] - q_l[i]);
        let slope_r = minmod(q_r[i] - q_l[i], q_rp[i] - q_r[i]);
        ql[i] = q_l[i] + 0.5 * slope_l;
        qr[i] = q_r[i] - 0.5 * slope_r;
    }
}

/// Primitives of one reconstructed face state — the legacy FACE_PRIMS
/// closure verbatim.
fn face_prim(axis: usize, rho: f64, mx: f64, my: f64, mz: f64, en: f64) -> (f64, f64, f64) {
    let r = rho.max(RHO_FLOOR);
    let v = [mx / r, my / r, mz / r];
    let ke = 0.5 * r * (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]);
    let p = ((GAMMA - 1.0) * (en - ke)).max(P_FLOOR);
    let cs = (GAMMA * p / r).sqrt();
    (v[axis], p, cs)
}

/// The five conserved-variable rows of a var-major plane, in
/// `RHO`..=`EN` order.
type ConsRows<'a> = (&'a [f64], &'a [f64], &'a [f64], &'a [f64], &'a [f64]);

/// The five contiguous variable rows (ρ, ρu, ρv, ρw, E) of a
/// var-major scratch plane of row length `n` — the conserved-variable
/// indices are contiguous from `RHO` to `EN`, so the plane splits into
/// exact-length rows without indexing.
#[inline]
fn cons_rows(q: &[f64], n: usize) -> ConsRows<'_> {
    let (rho, rest) = q.split_at(n);
    let (mx, rest) = rest.split_at(n);
    let (my, rest) = rest.split_at(n);
    let (mz, rest) = rest.split_at(n);
    (rho, mx, my, mz, &rest[..n])
}

/// Face primitives + max wavespeed for one row of faces from the
/// reconstructed left/right conserved planes (var-major contiguous,
/// `NCONS` rows of `val.len()`).
#[allow(clippy::too_many_arguments)]
fn face_prims_rows(
    axis: usize,
    ql: &[f64],
    qr: &[f64],
    val: &mut [f64],
    var_: &mut [f64],
    pl: &mut [f64],
    pr: &mut [f64],
    smax: &mut [f64],
) {
    let nf = val.len();
    let (ql_rho, ql_mx, ql_my, ql_mz, ql_en) = cons_rows(ql, nf);
    let (qr_rho, qr_mx, qr_my, qr_mz, qr_en) = cons_rows(qr, nf);
    let (var_, pl, pr, smax) = (
        &mut var_[..nf],
        &mut pl[..nf],
        &mut pr[..nf],
        &mut smax[..nf],
    );
    for f in 0..nf {
        let (vl, p_l, cl) = face_prim(axis, ql_rho[f], ql_mx[f], ql_my[f], ql_mz[f], ql_en[f]);
        let (vr, p_r, cr) = face_prim(axis, qr_rho[f], qr_mx[f], qr_my[f], qr_mz[f], qr_en[f]);
        val[f] = vl;
        var_[f] = vr;
        pl[f] = p_l;
        pr[f] = p_r;
        smax[f] = (vl.abs() + cl).max(vr.abs() + cr);
    }
}

/// Fused second-order MUSCL sweep: charges the legacy per-axis
/// sequence (5 MUSCL_RECON, FACE_PRIMS, then per variable FLUX +
/// UPDATE), then runs all three axes tile by tile. Requires
/// `state.sub.ghost >= 2`, like the legacy path.
pub fn sweep_muscl(
    state: &mut HydroState,
    exec: &mut Executor,
    clock: &mut RankClock,
    dt: f64,
) -> Result<(), GpuError> {
    assert!(
        state.sub.ghost >= 2,
        "MUSCL needs two ghost layers (got {})",
        state.sub.ghost
    );
    for axis in 0..3 {
        let fd = state.face_dims(axis);
        for _var in 0..NCONS {
            exec.charge3(clock, &kernels::MUSCL_RECON, fd)?;
        }
        exec.charge3(clock, &kernels::FACE_PRIMS, fd)?;
        for _var in 0..NCONS {
            exec.charge3(clock, &kernels::FLUX, fd)?;
            exec.charge3(clock, &kernels::UPDATE, state.ext())?;
        }
    }
    if exec.fidelity != Fidelity::Full {
        return Ok(());
    }
    let ext = state.ext();
    let dims = state.u.dims();
    let g = state.sub.ghost;
    let n0 = ext[0];
    let scale = dt / state.dx();
    let tiles = TileSet2::new(ext[1], ext[2], state.tile);
    let (u, u0) = (&state.u, &mut state.u0);
    let u_slab = u.slab();
    let rows = DisjointRowsMut::new(u0.slab_mut(), dims[0]);
    exec.run_tiles(&tiles, |tile| {
        let nf = n0 + 1;
        // Tile-contiguous scratch: x-face reconstruction/primitive/flux
        // rows plus the transverse planes, carved from one allocation.
        let mut arena = ScratchArena::zeroed((2 * NCONS + 6) * nf + (4 * NCONS + 5) * n0);
        let mut carve = arena.carver();
        let ql = carve.take(NCONS * nf);
        let qr = carve.take(NCONS * nf);
        let val = carve.take(nf);
        let var_ = carve.take(nf);
        let pl = carve.take(nf);
        let pr = carve.take(nf);
        let smax = carve.take(nf);
        let fx = carve.take(nf);
        let tql = carve.take(NCONS * n0);
        let tqr = carve.take(NCONS * n0);
        let tval = carve.take(n0);
        let tvar = carve.take(n0);
        let tpl = carve.take(n0);
        let tpr = carve.take(n0);
        let tsmax = carve.take(n0);
        let mut prev = carve.take(NCONS * n0);
        let mut cur = carve.take(NCONS * n0);
        // x sweep: face f reads the windows shifted by g−2 … g+1.
        for k in tile.k0..tile.k1 {
            for j in tile.j0..tile.j1 {
                let (aj, ak) = (j + g, k + g);
                for (var, (qlr, qrr)) in ql
                    .chunks_exact_mut(nf)
                    .zip(qr.chunks_exact_mut(nf))
                    .enumerate()
                {
                    let q = row_of(u_slab, dims, var, aj, ak);
                    recon_row(&q[g - 2..], &q[g - 1..], &q[g..], &q[g + 1..], qlr, qrr);
                }
                face_prims_rows(0, ql, qr, val, var_, pl, pr, smax);
                for (var, (qlr, qrr)) in ql.chunks_exact(nf).zip(qr.chunks_exact(nf)).enumerate() {
                    rusanov_row_var(var, 0, qlr, qrr, val, var_, pl, pr, smax, fx);
                    let mut tgt = rows.claim(row_index(dims, var, aj, ak));
                    update_row(&mut tgt[..], g, scale, &fx[..n0], &fx[1..]);
                }
            }
        }
        // Transverse sweeps share prev/cur flux planes like the
        // first-order path; reconstruction reads the four bracketing
        // rows of each face.
        // y sweep.
        for k in tile.k0..tile.k1 {
            let ak = k + g;
            for jf in tile.j0..=tile.j1 {
                for (var, (qlr, qrr)) in tql
                    .chunks_exact_mut(n0)
                    .zip(tqr.chunks_exact_mut(n0))
                    .enumerate()
                {
                    let q_lm = owned_row(u_slab, dims, g, var, jf + g - 2, ak);
                    let q_l = owned_row(u_slab, dims, g, var, jf + g - 1, ak);
                    let q_r = owned_row(u_slab, dims, g, var, jf + g, ak);
                    let q_rp = owned_row(u_slab, dims, g, var, jf + g + 1, ak);
                    recon_row(q_lm, q_l, q_r, q_rp, qlr, qrr);
                }
                face_prims_rows(1, tql, tqr, tval, tvar, tpl, tpr, tsmax);
                for (var, (fxr, (qlr, qrr))) in cur
                    .chunks_exact_mut(n0)
                    .zip(tql.chunks_exact(n0).zip(tqr.chunks_exact(n0)))
                    .enumerate()
                {
                    rusanov_row_var(var, 1, qlr, qrr, tval, tvar, tpl, tpr, tsmax, fxr);
                }
                if jf > tile.j0 {
                    let aj = jf - 1 + g;
                    for (var, (f_lo, f_hi)) in
                        prev.chunks_exact(n0).zip(cur.chunks_exact(n0)).enumerate()
                    {
                        let mut tgt = rows.claim(row_index(dims, var, aj, ak));
                        update_row(&mut tgt[..], g, scale, f_lo, f_hi);
                    }
                }
                std::mem::swap(&mut prev, &mut cur);
            }
        }
        // z sweep.
        for j in tile.j0..tile.j1 {
            let aj = j + g;
            for kf in tile.k0..=tile.k1 {
                for (var, (qlr, qrr)) in tql
                    .chunks_exact_mut(n0)
                    .zip(tqr.chunks_exact_mut(n0))
                    .enumerate()
                {
                    let q_lm = owned_row(u_slab, dims, g, var, aj, kf + g - 2);
                    let q_l = owned_row(u_slab, dims, g, var, aj, kf + g - 1);
                    let q_r = owned_row(u_slab, dims, g, var, aj, kf + g);
                    let q_rp = owned_row(u_slab, dims, g, var, aj, kf + g + 1);
                    recon_row(q_lm, q_l, q_r, q_rp, qlr, qrr);
                }
                face_prims_rows(2, tql, tqr, tval, tvar, tpl, tpr, tsmax);
                for (var, (fxr, (qlr, qrr))) in cur
                    .chunks_exact_mut(n0)
                    .zip(tql.chunks_exact(n0).zip(tqr.chunks_exact(n0)))
                    .enumerate()
                {
                    rusanov_row_var(var, 2, qlr, qrr, tval, tvar, tpl, tpr, tsmax, fxr);
                }
                if kf > tile.k0 {
                    let ak = kf - 1 + g;
                    for (var, (f_lo, f_hi)) in
                        prev.chunks_exact(n0).zip(cur.chunks_exact(n0)).enumerate()
                    {
                        let mut tgt = rows.claim(row_index(dims, var, aj, ak));
                        update_row(&mut tgt[..], g, scale, f_lo, f_hi);
                    }
                }
                std::mem::swap(&mut prev, &mut cur);
            }
        }
    });
    Ok(())
}

// ---------------------------------------------------------------------
// Per-tile diagnostics (parallel write-once collection).
// ---------------------------------------------------------------------

/// Sum of one owned row (row order, left to right).
fn row_sum(row: &[f64]) -> f64 {
    row.iter().sum()
}

/// Per-tile owned-zone mass (Σρ over each tile's owned zones, rows
/// accumulated in j-then-k order), in the tile set's deterministic
/// enumeration order. Built on [`Executor::run_tiles_collect`] — the
/// write-once tile-slot collection — so the returned sequence is
/// bitwise identical for any worker count, making it usable as a
/// conservation diagnostic for the parallel tile path. Empty under
/// [`Fidelity::CostOnly`].
pub fn tile_masses(state: &HydroState, exec: &mut Executor) -> Vec<f64> {
    if state.fidelity != Fidelity::Full {
        return Vec::new();
    }
    let ext = state.ext();
    let dims = state.u.dims();
    let g = state.sub.ghost;
    let tiles = TileSet2::new(ext[1], ext[2], state.tile);
    let u_slab = state.u.slab();
    exec.run_tiles_collect(&tiles, |tile| {
        let mut acc = 0.0;
        for k in tile.k0..tile.k1 {
            for j in tile.j0..tile.j1 {
                acc += row_sum(owned_row(u_slab, dims, g, RHO, j + g, k + g));
            }
        }
        acc
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{self, PerturbedConfig};
    use hsim_mesh::{GlobalGrid, Subdomain};
    use hsim_raja::{CpuModel, Target};

    fn perturbed(n: usize, ghost: usize) -> HydroState {
        let grid = GlobalGrid::new(n, n, n);
        let sub = Subdomain::new([0, 0, 0], [n, n, n], ghost);
        let mut st = HydroState::new(grid, sub, Fidelity::Full);
        workload::init(&mut st, &PerturbedConfig::default());
        for var in 0..NCONS {
            for axis in 0..3 {
                st.u.reflect_into_ghost(var, axis, hsim_mesh::Side::Low, 1.0);
                st.u.reflect_into_ghost(var, axis, hsim_mesh::Side::High, 1.0);
            }
        }
        let u = st.u.clone();
        st.u0.copy_from(&u);
        st
    }

    fn exec_seq() -> (Executor, RankClock) {
        (
            Executor::new(Target::CpuSeq, CpuModel::haswell_fixed(), Fidelity::Full),
            RankClock::new(0),
        )
    }

    fn assert_slabs_identical(a: &[f64], b: &[f64], what: &str) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{what}: slab element {i} differs: {x} vs {y}"
            );
        }
    }

    #[test]
    fn fused_primitives_match_legacy_bitwise() {
        let mut legacy = perturbed(10, 1);
        let mut fused = perturbed(10, 1);
        let (mut e1, mut c1) = exec_seq();
        let (mut e2, mut c2) = exec_seq();
        crate::eos::primitives(&mut legacy, &mut e1, &mut c1).unwrap();
        primitives(&mut fused, &mut e2, &mut c2).unwrap();
        assert_slabs_identical(legacy.prim.slab(), fused.prim.slab(), "primitives");
        assert_eq!(c1.now(), c2.now(), "charge parity");
        assert_eq!(e1.registry.total_launches(), e2.registry.total_launches());
    }

    #[test]
    fn fused_sweep_matches_legacy_bitwise() {
        let mut legacy = perturbed(10, 1);
        let mut fused = perturbed(10, 1);
        let (mut e1, mut c1) = exec_seq();
        let (mut e2, mut c2) = exec_seq();
        crate::eos::primitives(&mut legacy, &mut e1, &mut c1).unwrap();
        crate::flux::sweep(&mut legacy, &mut e1, &mut c1, 0.004).unwrap();
        primitives(&mut fused, &mut e2, &mut c2).unwrap();
        sweep(&mut fused, &mut e2, &mut c2, 0.004).unwrap();
        assert_slabs_identical(legacy.u0.slab(), fused.u0.slab(), "sweep u0");
        assert_eq!(c1.now(), c2.now(), "charge parity");
        assert_eq!(e1.registry.total_launches(), e2.registry.total_launches());
    }

    #[test]
    fn fused_sweep_is_tile_shape_invariant_and_parallel_safe() {
        let (mut e1, mut c1) = exec_seq();
        let mut reference = perturbed(11, 1);
        primitives(&mut reference, &mut e1, &mut c1).unwrap();
        sweep(&mut reference, &mut e1, &mut c1, 0.002).unwrap();
        for (tile, threads) in [([1, 1], 1), ([3, 2], 3), ([16, 16], 4), ([5, 11], 2)] {
            let mut st = perturbed(11, 1);
            st.tile = tile;
            let mut exec = Executor::new(
                Target::cpu_parallel(threads),
                CpuModel::haswell_fixed(),
                Fidelity::Full,
            );
            let mut clock = RankClock::new(0);
            primitives(&mut st, &mut exec, &mut clock).unwrap();
            sweep(&mut st, &mut exec, &mut clock, 0.002).unwrap();
            assert_slabs_identical(
                reference.u0.slab(),
                st.u0.slab(),
                &format!("tile {tile:?} threads {threads}"),
            );
        }
    }

    #[test]
    fn fused_muscl_matches_legacy_bitwise() {
        let mut legacy = perturbed(9, 2);
        let mut fused = perturbed(9, 2);
        let (mut e1, mut c1) = exec_seq();
        let (mut e2, mut c2) = exec_seq();
        crate::eos::primitives(&mut legacy, &mut e1, &mut c1).unwrap();
        crate::muscl::sweep_muscl(&mut legacy, &mut e1, &mut c1, 0.003).unwrap();
        primitives(&mut fused, &mut e2, &mut c2).unwrap();
        sweep_muscl(&mut fused, &mut e2, &mut c2, 0.003).unwrap();
        assert_slabs_identical(legacy.u0.slab(), fused.u0.slab(), "muscl u0");
        assert_eq!(c1.now(), c2.now(), "charge parity");
        assert_eq!(e1.registry.total_launches(), e2.registry.total_launches());
    }

    #[test]
    fn fused_save_and_combine_match_legacy_semantics() {
        let mut st = perturbed(8, 1);
        let (mut exec, mut clock) = exec_seq();
        st.u0.fill(RHO, 3.25);
        save_state(&mut st, &mut exec, &mut clock).unwrap();
        assert_slabs_identical(st.u.slab(), st.u0.slab(), "save");
        // combine of identical slabs is a fixed point: ½a + ½a = a.
        let before = st.u0.slab().to_vec();
        combine(&mut st, &mut exec, &mut clock).unwrap();
        assert_slabs_identical(&before, st.u0.slab(), "combine fixed point");
        // 5 SAVE_STATE + 5 COMBINE launches.
        assert_eq!(exec.registry.total_launches(), 10);
    }

    #[test]
    fn tile_masses_are_worker_count_invariant_and_sum_to_total() {
        let mut reference = perturbed(11, 1);
        reference.tile = [3, 5];
        let (mut e1, _c1) = exec_seq();
        let expect = tile_masses(&reference, &mut e1);
        assert!(!expect.is_empty());
        // Per-tile partials in tile order sum (in that fixed order) to
        // a value ulp-close to the slab reduction.
        let total: f64 = expect.iter().sum();
        assert!((total - reference.u.sum_owned(RHO)).abs() <= 1e-12 * total.abs());
        for threads in [1, 2, 4] {
            let mut exec = Executor::new(
                Target::cpu_parallel(threads),
                CpuModel::haswell_fixed(),
                Fidelity::Full,
            );
            let got = tile_masses(&reference, &mut exec);
            assert_eq!(got.len(), expect.len());
            for (i, (a, b)) in expect.iter().zip(&got).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "tile {i} threads {threads}");
            }
        }
    }

    #[test]
    fn fused_sweep_charges_33_launches() {
        let mut st = perturbed(6, 1);
        let (mut exec, mut clock) = exec_seq();
        primitives(&mut st, &mut exec, &mut clock).unwrap();
        exec.registry.clear();
        sweep(&mut st, &mut exec, &mut clock, 0.01).unwrap();
        assert_eq!(exec.registry.total_launches(), 33);
    }

    #[test]
    fn cost_only_fused_path_charges_without_allocating() {
        let grid = GlobalGrid::new(48, 48, 48);
        let sub = Subdomain::new([0, 0, 0], [48, 48, 48], 1);
        let mut st = HydroState::new(grid, sub, Fidelity::CostOnly);
        let mut exec = Executor::new(
            Target::CpuSeq,
            CpuModel::haswell_fixed(),
            Fidelity::CostOnly,
        );
        let mut clock = RankClock::new(0);
        primitives(&mut st, &mut exec, &mut clock).unwrap();
        sweep(&mut st, &mut exec, &mut clock, 0.01).unwrap();
        save_state(&mut st, &mut exec, &mut clock).unwrap();
        combine(&mut st, &mut exec, &mut clock).unwrap();
        assert!(clock.now().as_nanos() > 0);
        assert_eq!(exec.registry.total_launches(), 3 + 33 + 5 + 5);
        assert!(st.u.var(RHO).len() < 64, "no full-size allocation");
    }
}
