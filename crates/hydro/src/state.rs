//! The hydrodynamic state on one rank's subdomain.

use hsim_mesh::{GlobalGrid, SoaBlock, Subdomain};
use hsim_raja::Fidelity;

/// Number of conserved variables: ρ, ρu, ρv, ρw, E.
pub const NCONS: usize = 5;

/// Conserved-variable indices into [`HydroState::u`].
pub const RHO: usize = 0;
pub const MX: usize = 1;
pub const MY: usize = 2;
pub const MZ: usize = 3;
pub const EN: usize = 4;

/// Number of primitive variables: vx, vy, vz, p, cs.
pub const NPRIM: usize = 5;

/// Primitive-variable indices into [`HydroState::prim`].
pub const VX: usize = 0;
pub const VY: usize = 1;
pub const VZ: usize = 2;
pub const PR: usize = 3;
pub const CS: usize = 4;

/// Ratio of specific heats (ideal gas).
pub const GAMMA: f64 = 1.4;

/// Density/pressure floors keeping the cold background physical.
pub const RHO_FLOOR: f64 = 1e-10;
pub const P_FLOOR: f64 = 1e-12;

/// Default y–z tile shape for fused cache-blocked sweeps. Tile size
/// never changes results (tiles write disjoint rows), only wall-clock
/// speed, so any default is correct; the runner overrides it from the
/// config knob or the calibration probe.
pub const DEFAULT_TILE: [usize; 2] = [8, 8];

/// Tile-contiguous scratch for the fused cache-blocked sweeps: one
/// dense allocation per tile body, carved into exact-length slabs by
/// [`ScratchArena::carver`]. Keeping a tile's whole working set (face
/// wavespeeds, flux rows, reconstruction planes) in a handful of
/// contiguous slabs — instead of a `Vec<Vec<f64>>` per plane — keeps
/// the tile resident in cache and gives the autovectorized row loops
/// exact-length slices with no pointer chasing.
pub struct ScratchArena {
    buf: Vec<f64>,
}

impl ScratchArena {
    /// One zero-filled contiguous allocation of `len` elements.
    pub fn zeroed(len: usize) -> Self {
        ScratchArena {
            buf: vec![0.0; len],
        }
    }

    /// Start carving the allocation into disjoint slabs.
    pub fn carver(&mut self) -> Carver<'_> {
        Carver {
            rest: &mut self.buf,
        }
    }
}

/// Hands out disjoint dense slabs of a [`ScratchArena`] front to back.
pub struct Carver<'a> {
    rest: &'a mut [f64],
}

impl<'a> Carver<'a> {
    /// Take the next `len` elements as one dense slab. Panics if the
    /// arena was sized too small.
    pub fn take(&mut self, len: usize) -> &'a mut [f64] {
        let rest = std::mem::take(&mut self.rest);
        let (head, rest) = rest.split_at_mut(len);
        self.rest = rest;
        head
    }
}

/// The per-rank hydro state: conserved fields, primitive scratch, RK
/// stage copy, and face-flux scratch.
///
/// Conserved and primitive storage are structure-of-arrays slabs
/// ([`SoaBlock`]): all five variables of a zone row are contiguous
/// per-variable, var-major, so a cache-blocked tile touches every
/// variable while resident in cache.
///
/// Under [`Fidelity::CostOnly`] the arrays are not allocated (the
/// bodies never run); the logical extents are retained so kernel
/// launches charge exactly the same virtual time.
pub struct HydroState {
    pub grid: GlobalGrid,
    pub sub: Subdomain,
    pub fidelity: Fidelity,
    /// Conserved variables ρ, ρu, ρv, ρw, E (ghost width ≥ 1).
    pub u: SoaBlock,
    /// RK stage-0 snapshot of `u`.
    pub u0: SoaBlock,
    /// Primitive scratch: vx, vy, vz, pressure, sound speed.
    pub prim: SoaBlock,
    /// Face-centered scratch: wavespeed and one variable's flux,
    /// sized for the largest axis.
    pub wavespeed: Vec<f64>,
    pub flux: Vec<f64>,
    /// y–z tile shape used by the fused cache-blocked sweep path.
    pub tile: [usize; 2],
    /// Simulated physical time.
    pub t: f64,
    /// Completed cycles.
    pub cycle: u64,
}

impl HydroState {
    /// Allocate the state for `sub` of `grid`.
    pub fn new(grid: GlobalGrid, sub: Subdomain, fidelity: Fidelity) -> Self {
        assert!(sub.ghost >= 1, "hydro needs at least one ghost layer");
        let (alloc_sub, alloc_fidelity) = match fidelity {
            Fidelity::Full => (sub, fidelity),
            // Cost-only states allocate a token 1³ subdomain so slab
            // construction stays cheap while extents for cost purposes
            // come from `sub` itself.
            Fidelity::CostOnly => (
                Subdomain::new(sub.lo, [sub.lo[0] + 1, sub.lo[1] + 1, sub.lo[2] + 1], 1),
                fidelity,
            ),
        };
        let u = SoaBlock::new(&alloc_sub, NCONS);
        let u0 = SoaBlock::new(&alloc_sub, NCONS);
        let prim = SoaBlock::new(&alloc_sub, NPRIM);
        // Face scratch sized for the largest face grid among axes.
        let face_len = match alloc_fidelity {
            Fidelity::Full => (0..3)
                .map(|a| Self::face_count(sub.extents(), a))
                .max()
                .unwrap_or(0),
            Fidelity::CostOnly => 1,
        };
        HydroState {
            grid,
            sub,
            fidelity,
            u,
            u0,
            prim,
            wavespeed: vec![0.0; face_len],
            flux: vec![0.0; face_len],
            tile: DEFAULT_TILE,
            t: 0.0,
            cycle: 0,
        }
    }

    /// Faces along `axis` for extents `ext`: `(ext[axis]+1) · rest`.
    pub fn face_count(ext: [usize; 3], axis: usize) -> usize {
        (ext[axis] + 1) * ext[(axis + 1) % 3] * ext[(axis + 2) % 3]
    }

    /// Owned zone extents.
    pub fn ext(&self) -> [usize; 3] {
        self.sub.extents()
    }

    /// Allocated (owned + ghost) extents of the zone fields.
    pub fn ext_all(&self) -> [usize; 3] {
        let g = 2 * self.sub.ghost;
        let e = self.ext();
        [e[0] + g, e[1] + g, e[2] + g]
    }

    /// Zone spacing (cubic zones).
    pub fn dx(&self) -> f64 {
        self.grid.spacing().0
    }

    /// Total owned mass (Σ ρ · V).
    pub fn total_mass(&self) -> f64 {
        let h = self.dx();
        self.u.sum_owned(RHO) * h * h * h
    }

    /// Total owned energy (Σ E · V).
    pub fn total_energy(&self) -> f64 {
        let h = self.dx();
        self.u.sum_owned(EN) * h * h * h
    }

    /// Initialize a uniform ambient gas: density `rho0`, pressure
    /// `p0`, at rest.
    pub fn init_ambient(&mut self, rho0: f64, p0: f64) {
        if self.fidelity == Fidelity::CostOnly {
            return;
        }
        self.u.fill(RHO, rho0);
        self.u.fill(MX, 0.0);
        self.u.fill(MY, 0.0);
        self.u.fill(MZ, 0.0);
        self.u.fill(EN, p0 / (GAMMA - 1.0));
    }

    /// Face-grid dimensions along `axis` (owned).
    pub fn face_dims(&self, axis: usize) -> [usize; 3] {
        let mut d = self.ext();
        d[axis] += 1;
        d
    }

    /// Linear index into a face array for `axis` with face coordinate
    /// `f` along the axis and zone coordinates transverse.
    #[inline]
    pub fn face_idx(&self, axis: usize, i: usize, j: usize, k: usize) -> usize {
        let d = self.face_dims(axis);
        i + j * d[0] + k * d[0] * d[1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> HydroState {
        let grid = GlobalGrid::new(8, 8, 8);
        let sub = Subdomain::new([0, 0, 0], [8, 8, 8], 1);
        HydroState::new(grid, sub, Fidelity::Full)
    }

    #[test]
    fn allocation_shapes() {
        let s = small();
        assert_eq!(s.ext(), [8, 8, 8]);
        assert_eq!(s.ext_all(), [10, 10, 10]);
        assert_eq!(s.u.nvar(), NCONS);
        assert_eq!(s.u.var(RHO).len(), 1000);
        // The conserved slab is one contiguous allocation of all vars.
        assert_eq!(s.u.slab().len(), NCONS * 1000);
        assert_eq!(s.prim.nvar(), NPRIM);
        // Face scratch must fit any axis: (8+1)*8*8.
        assert!(s.wavespeed.len() >= 9 * 64);
        assert_eq!(s.tile, DEFAULT_TILE);
    }

    #[test]
    fn cost_only_is_tiny() {
        let grid = GlobalGrid::new(320, 480, 160);
        let sub = Subdomain::new([0, 0, 0], [320, 480, 160], 1);
        let s = HydroState::new(grid, sub, Fidelity::CostOnly);
        // Logical extents are the real ones…
        assert_eq!(s.ext(), [320, 480, 160]);
        // …but allocation is token-sized.
        assert!(s.u.var(RHO).len() < 64);
        assert_eq!(s.wavespeed.len(), 1);
    }

    #[test]
    fn ambient_init_sets_energy_from_pressure() {
        let mut s = small();
        s.init_ambient(1.0, 0.4);
        // E = p/(γ-1) = 0.4/0.4 = 1.0 per zone.
        assert!((s.u.get(EN, 3, 3, 3) - 1.0).abs() < 1e-12);
        let h = s.dx();
        let expect_mass = 1.0 * (8.0 * h) * (8.0 * h) * (8.0 * h);
        assert!((s.total_mass() - expect_mass).abs() < 1e-12);
    }

    #[test]
    fn face_counts() {
        assert_eq!(HydroState::face_count([4, 3, 2], 0), 5 * 3 * 2);
        assert_eq!(HydroState::face_count([4, 3, 2], 1), 4 * 4 * 2);
        assert_eq!(HydroState::face_count([4, 3, 2], 2), 4 * 3 * 3);
    }

    #[test]
    fn face_idx_is_dense_and_unique() {
        let s = small();
        let d = s.face_dims(0);
        let mut seen = vec![false; d[0] * d[1] * d[2]];
        for k in 0..d[2] {
            for j in 0..d[1] {
                for i in 0..d[0] {
                    let idx = s.face_idx(0, i, j, k);
                    assert!(!seen[idx]);
                    seen[idx] = true;
                }
            }
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn scratch_arena_carves_disjoint_exact_slabs() {
        let mut arena = ScratchArena::zeroed(10);
        let mut carve = arena.carver();
        let a = carve.take(3);
        let b = carve.take(7);
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 7);
        a.fill(1.0);
        b.fill(2.0);
        assert!(a.iter().all(|&x| x == 1.0));
        assert!(b.iter().all(|&x| x == 2.0));
    }

    #[test]
    #[should_panic]
    fn scratch_arena_rejects_overflow() {
        let mut arena = ScratchArena::zeroed(4);
        let mut carve = arena.carver();
        let _ = carve.take(5);
    }

    #[test]
    #[should_panic(expected = "ghost")]
    fn ghostless_subdomain_rejected() {
        let grid = GlobalGrid::new(8, 8, 8);
        let sub = Subdomain::new([0, 0, 0], [8, 8, 8], 0);
        let _ = HydroState::new(grid, sub, Fidelity::Full);
    }
}
