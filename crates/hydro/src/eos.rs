//! Primitive-variable kernels (ideal-gas EOS).
//!
//! Primitives are computed over the *allocated* region (owned +
//! ghosts) so the flux kernels can evaluate both sides of boundary
//! faces after a halo exchange / boundary fill.
//!
//! This is the legacy per-pass path (one kernel per primitive),
//! retained as the reference implementation for tests and the perf
//! harness; the production cycle uses the fused tiled equivalent in
//! [`crate::fused`], which is bitwise-identical.

use hsim_gpu::GpuError;
use hsim_raja::Executor;
use hsim_time::RankClock;

use crate::kernels;
use crate::state::{HydroState, CS, EN, GAMMA, MX, MY, MZ, P_FLOOR, RHO, RHO_FLOOR, VX, VY, VZ};

/// Linear indexer for a dims-shaped array.
#[inline]
pub(crate) fn indexer(dims: [usize; 3]) -> impl Fn(usize, usize, usize) -> usize {
    move |i, j, k| i + j * dims[0] + k * dims[0] * dims[1]
}

/// Compute velocity, pressure, and sound speed from the conserved
/// fields (three kernels).
pub fn primitives(
    state: &mut HydroState,
    exec: &mut Executor,
    clock: &mut RankClock,
) -> Result<(), GpuError> {
    let ext = state.ext_all();
    let dims = state.u.dims();
    let at = indexer(dims);

    // Velocity: v_a = m_a / ρ (with a floor on ρ).
    {
        let (u, prim) = (&state.u, &mut state.prim);
        let rho = u.var(RHO);
        let mx = u.var(MX);
        let my = u.var(MY);
        let mz = u.var(MZ);
        let [vx, vy, vz, _p, _cs] = prim.vars_mut();
        let at = &at;
        exec.forall3(clock, &kernels::VELOCITY, ext, |i, j, k| {
            let idx = at(i, j, k);
            let r = rho[idx].max(RHO_FLOOR);
            vx[idx] = mx[idx] / r;
            vy[idx] = my[idx] / r;
            vz[idx] = mz[idx] / r;
        })?;
    }

    // Pressure: p = (γ−1)(E − ½ρ|v|²), floored.
    {
        let (u, prim) = (&state.u, &mut state.prim);
        let rho = u.var(RHO);
        let en = u.var(EN);
        let [vx, vy, vz, p, _cs] = prim.vars_mut();
        let (vx, vy, vz) = (&*vx, &*vy, &*vz);
        let at = &at;
        exec.forall3(clock, &kernels::PRESSURE, ext, |i, j, k| {
            let idx = at(i, j, k);
            let r = rho[idx].max(RHO_FLOOR);
            let ke = 0.5 * r * (vx[idx] * vx[idx] + vy[idx] * vy[idx] + vz[idx] * vz[idx]);
            p[idx] = ((GAMMA - 1.0) * (en[idx] - ke)).max(P_FLOOR);
        })?;
    }

    // Sound speed: c = sqrt(γ p / ρ).
    {
        let (u, prim) = (&state.u, &mut state.prim);
        let rho = u.var(RHO);
        let [_vx, _vy, _vz, p, cs] = prim.vars_mut();
        let p = &*p;
        let at = &at;
        exec.forall3(clock, &kernels::SOUND_SPEED, ext, |i, j, k| {
            let idx = at(i, j, k);
            cs[idx] = (GAMMA * p[idx] / rho[idx].max(RHO_FLOOR)).sqrt();
        })?;
    }
    Ok(())
}

/// The CFL-limited timestep bound over this rank's owned zones
/// (one min-reduction kernel). Returns `default` in cost-only mode.
pub fn cfl_dt(
    state: &mut HydroState,
    exec: &mut Executor,
    clock: &mut RankClock,
    cfl: f64,
    default: f64,
) -> Result<f64, GpuError> {
    let ext = state.ext();
    let g = state.sub.ghost;
    let dims = state.u.dims();
    let at = indexer(dims);
    let h = state.dx();
    let prim = &state.prim;
    let vx = prim.var(VX);
    let vy = prim.var(VY);
    let vz = prim.var(VZ);
    let cs = prim.var(CS);
    let at = &at;
    let bound = exec.forall3_min(clock, &kernels::CFL, ext, default / cfl, |i, j, k| {
        let idx = at(i + g, j + g, k + g);
        let vmax = vx[idx].abs().max(vy[idx].abs()).max(vz[idx].abs());
        h / (vmax + cs[idx]).max(1e-30)
    })?;
    Ok(cfl * bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::PR;
    use hsim_mesh::{GlobalGrid, Subdomain};
    use hsim_raja::{CpuModel, Fidelity, Target};

    fn setup() -> (HydroState, Executor, RankClock) {
        let grid = GlobalGrid::new(8, 8, 8);
        let sub = Subdomain::new([0, 0, 0], [8, 8, 8], 1);
        let mut state = HydroState::new(grid, sub, Fidelity::Full);
        state.init_ambient(1.0, 0.4);
        let exec = Executor::new(Target::CpuSeq, CpuModel::haswell_fixed(), Fidelity::Full);
        (state, exec, RankClock::new(0))
    }

    #[test]
    fn ambient_primitives_are_uniform() {
        let (mut state, mut exec, mut clock) = setup();
        primitives(&mut state, &mut exec, &mut clock).unwrap();
        // p = 0.4, ρ = 1 ⇒ cs = sqrt(1.4·0.4) ≈ 0.7483.
        let idx = state.prim.idx(4, 4, 4);
        assert!((state.prim.var(PR)[idx] - 0.4).abs() < 1e-12);
        assert!((state.prim.var(CS)[idx] - (1.4f64 * 0.4).sqrt()).abs() < 1e-12);
        assert_eq!(state.prim.var(VX)[idx], 0.0);
    }

    #[test]
    fn moving_gas_has_correct_velocity_and_pressure() {
        let (mut state, mut exec, mut clock) = setup();
        // Give everything ρ=2, v=(1,0,0), p=0.8:
        // m_x = 2, E = p/(γ-1) + ½ρv² = 2 + 1 = 3.
        state.u.fill(RHO, 2.0);
        state.u.fill(MX, 2.0);
        state.u.fill(EN, 0.8 / (GAMMA - 1.0) + 1.0);
        primitives(&mut state, &mut exec, &mut clock).unwrap();
        let idx = state.prim.idx(4, 4, 4);
        assert!((state.prim.var(VX)[idx] - 1.0).abs() < 1e-12);
        assert!((state.prim.var(PR)[idx] - 0.8).abs() < 1e-12);
    }

    #[test]
    fn pressure_floor_prevents_negativity() {
        let (mut state, mut exec, mut clock) = setup();
        // Kinetic energy exceeds total energy: raw p would be negative.
        state.u.fill(RHO, 1.0);
        state.u.fill(MX, 10.0);
        state.u.fill(EN, 1.0);
        primitives(&mut state, &mut exec, &mut clock).unwrap();
        let idx = state.prim.idx(2, 2, 2);
        assert_eq!(state.prim.var(PR)[idx], P_FLOOR);
    }

    #[test]
    fn cfl_dt_matches_hand_computation() {
        let (mut state, mut exec, mut clock) = setup();
        primitives(&mut state, &mut exec, &mut clock).unwrap();
        let dt = cfl_dt(&mut state, &mut exec, &mut clock, 0.3, 1.0).unwrap();
        let cs = (1.4f64 * 0.4).sqrt();
        let expect = 0.3 * state.dx() / cs;
        assert!((dt - expect).abs() / expect < 1e-12, "dt {dt} vs {expect}");
    }

    #[test]
    fn cost_only_cfl_returns_default() {
        let grid = GlobalGrid::new(8, 8, 8);
        let sub = Subdomain::new([0, 0, 0], [8, 8, 8], 1);
        let mut state = HydroState::new(grid, sub, Fidelity::CostOnly);
        let mut exec = Executor::new(
            Target::CpuSeq,
            CpuModel::haswell_fixed(),
            Fidelity::CostOnly,
        );
        let mut clock = RankClock::new(0);
        let dt = cfl_dt(&mut state, &mut exec, &mut clock, 0.3, 0.125).unwrap();
        assert!((dt - 0.125).abs() < 1e-15);
    }
}
