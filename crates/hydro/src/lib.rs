//! # hsim-hydro
//!
//! The multi-physics proxy: a complete 3D compressible-hydrodynamics
//! mini-app standing in for the hydro package of ARES (which is
//! proprietary). It is written entirely against the `hsim-raja`
//! portability layer — every loop is a `forall` kernel whose execution
//! target (CPU core or simulated GPU) is chosen by the control code at
//! runtime, exactly as in the paper's §5.1.
//!
//! **Scheme.** First-order Godunov finite volume with Rusanov (local
//! Lax–Friedrichs) fluxes and a two-stage (Heun) time integrator on a
//! zone-centered structured grid: simple, robust, conservative by
//! construction, and shock-capturing — everything the 3D Sedov blast
//! wave problem (§7, Figure 11) needs.
//!
//! **Kernel granularity.** Fluxes and updates are separate kernels per
//! conserved variable per axis, plus EOS/primitive kernels, boundary
//! kernels, and the CFL reduction: ~85 launches per cycle, matching
//! the paper's "hydrodynamics calculation with 80 kernels" (Figure 11
//! caption). Fine-grained kernels are also what makes kernel-launch
//! overhead and MPS overlap matter, which the evaluation probes.
//!
//! **Fidelity.** Bodies run under `Fidelity::Full` (tests, examples)
//! and are skipped under `CostOnly` (large sweeps) — virtual time is
//! identical because kernel cost depends only on sizes and shapes.

#![forbid(unsafe_code)]

pub mod bc;
pub mod cycle;
pub mod diffusion;
pub mod eos;
pub mod flux;
pub mod fused;
pub mod kernels;
pub mod muscl;
pub mod noh;
pub mod sedov;
pub mod sod;
pub mod state;
pub mod taylor_green;
pub mod workload;

pub use cycle::{step, step_with, CoupleError, Coupler, CycleError, CycleStats, SoloCoupler};
pub use diffusion::{diffuse_step, diffusion_dt, DiffusionConfig};
pub use muscl::{sweep_muscl, Reconstruction};
pub use noh::NohConfig;
pub use sedov::{sedov_shock_radius, SedovConfig};
pub use sod::{exact_solution, GasState, SodConfig};
pub use state::{HydroState, NCONS};
pub use taylor_green::TaylorGreenConfig;
pub use workload::PerturbedConfig;
