//! Reflecting (rigid-wall) boundary conditions.
//!
//! On every physical boundary face of the rank's subdomain, ghost
//! zones mirror the adjacent owned zones; the momentum component
//! normal to the wall flips sign (so the wall-face velocity — and
//! hence the advective flux through the wall — is zero to first
//! order, and the pressure force is balanced).

use hsim_gpu::GpuError;
use hsim_mesh::Side;
use hsim_raja::{Executor, Fidelity};
use hsim_time::RankClock;

use crate::kernels;
use crate::state::{HydroState, MX, NCONS};

/// Fill physical-boundary ghosts of all conserved fields.
///
/// One `boundary_fill` kernel launch is charged per (field, face)
/// pair that lies on a physical boundary, sized by the face area.
pub fn apply(
    state: &mut HydroState,
    exec: &mut Executor,
    clock: &mut RankClock,
) -> Result<(), GpuError> {
    let grid = state.grid;
    let sub = state.sub;
    for axis in 0..3 {
        for (side, dir) in [(Side::Low, -1), (Side::High, 1)] {
            if !sub.on_boundary(&grid, axis, dir) {
                continue;
            }
            for var in 0..NCONS {
                // Normal momentum flips sign at a rigid wall.
                let sign = if var == MX + axis { -1.0 } else { 1.0 };
                // Sized from the logical extents (not the allocated
                // field) so cost-only runs charge identical time.
                let e = state.ext();
                let face_elems = sub.ghost * e[(axis + 1) % 3] * e[(axis + 2) % 3];
                let inner = e[0].min(u32::MAX as usize) as u32;
                // Thread-safe no-op body: the boundary kernel's cost
                // accrues here, and on a CpuParallel target it runs
                // through the shared work pool.
                exec.forall_par(clock, &kernels::BOUNDARY, face_elems, inner, |_| {})?;
                if exec.fidelity == Fidelity::Full {
                    state.u.reflect_into_ghost(var, axis, side, sign);
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{EN, GAMMA, MY, RHO};
    use hsim_mesh::{GlobalGrid, Subdomain};
    use hsim_raja::{CpuModel, Target};

    fn setup() -> (HydroState, Executor, RankClock) {
        let grid = GlobalGrid::new(4, 4, 4);
        let sub = Subdomain::new([0, 0, 0], [4, 4, 4], 1);
        let state = HydroState::new(grid, sub, Fidelity::Full);
        let exec = Executor::new(Target::CpuSeq, CpuModel::haswell_fixed(), Fidelity::Full);
        (state, exec, RankClock::new(0))
    }

    #[test]
    fn ghosts_mirror_density_and_flip_normal_momentum() {
        let (mut state, mut exec, mut clock) = setup();
        state.u.fill_owned(RHO, 2.0);
        state.u.fill_owned(MX, 0.7);
        state.u.fill_owned(MY, 0.5);
        state.u.fill_owned(EN, 1.0 / (GAMMA - 1.0));
        apply(&mut state, &mut exec, &mut clock).unwrap();
        // Low-x ghost of a central (j,k): allocated (0, j+1, k+1).
        let idx = state.u.idx(0, 2, 2);
        assert_eq!(state.u.var(RHO)[idx], 2.0);
        assert_eq!(state.u.var(MX)[idx], -0.7, "normal momentum flips");
        assert_eq!(state.u.var(MY)[idx], 0.5, "transverse momentum copies");
    }

    #[test]
    fn interior_subdomain_gets_no_boundary_kernels() {
        let grid = GlobalGrid::new(12, 12, 12);
        let sub = Subdomain::new([4, 4, 4], [8, 8, 8], 1);
        let mut state = HydroState::new(grid, sub, Fidelity::Full);
        let mut exec = Executor::new(Target::CpuSeq, CpuModel::haswell_fixed(), Fidelity::Full);
        let mut clock = RankClock::new(0);
        apply(&mut state, &mut exec, &mut clock).unwrap();
        assert_eq!(exec.registry.total_launches(), 0);
    }

    #[test]
    fn corner_subdomain_fills_three_faces() {
        let grid = GlobalGrid::new(8, 8, 8);
        let sub = Subdomain::new([0, 0, 0], [4, 4, 4], 1);
        let mut state = HydroState::new(grid, sub, Fidelity::Full);
        let mut exec = Executor::new(Target::CpuSeq, CpuModel::haswell_fixed(), Fidelity::Full);
        let mut clock = RankClock::new(0);
        apply(&mut state, &mut exec, &mut clock).unwrap();
        // 3 physical faces × 5 fields.
        assert_eq!(exec.registry.total_launches(), 15);
    }

    #[test]
    fn full_box_fills_all_six_faces() {
        let (mut state, mut exec, mut clock) = setup();
        apply(&mut state, &mut exec, &mut clock).unwrap();
        assert_eq!(exec.registry.total_launches(), 30);
    }
}
