//! Rusanov face fluxes and flux-difference updates, one kernel per
//! conserved variable per axis.
//!
//! For axis `a`, face `f` sits between allocated zones `f+g−1` and
//! `f+g` along that axis (ghost width `g`). The Rusanov flux of `q`
//! is `½(F_L + F_R) − ½ s (q_R − q_L)` with `s` the per-face maximum
//! wavespeed, computed once per axis by [`wavespeeds`].
//!
//! Updates are applied to a *target* field set distinct from the one
//! fluxes read, so the three axis sweeps all see the pre-update state
//! (an unsplit update).
//!
//! This is the legacy per-pass path, retained as the reference
//! implementation for tests and the perf harness; the production
//! cycle runs the fused cache-blocked equivalent in [`crate::fused`],
//! which is bitwise-identical.

use hsim_gpu::GpuError;
use hsim_raja::Executor;
use hsim_time::RankClock;

use crate::eos::indexer;
use crate::kernels;
use crate::state::{HydroState, CS, EN, MX, PR, RHO, VX};

/// Compute per-face max wavespeeds along `axis` into `state.wavespeed`.
pub fn wavespeeds(
    state: &mut HydroState,
    exec: &mut Executor,
    clock: &mut RankClock,
    axis: usize,
) -> Result<(), GpuError> {
    let fd = state.face_dims(axis);
    let dims = state.u.dims();
    let at = indexer(dims);
    let fat = indexer(fd);
    let g = state.sub.ghost;
    let (prim, ws) = (&state.prim, &mut state.wavespeed);
    let va = prim.var(VX + axis);
    let cs = prim.var(CS);
    let ws = &mut ws[..];
    // Allocated coordinates of the L zone for face (i,j,k): along the
    // flux axis, face f sits between allocated zones f+g-1 and f+g;
    // transverse axes shift by g.
    let shift = move |i: usize, j: usize, k: usize, along: usize| -> [usize; 3] {
        let mut c = [i, j, k];
        for (a, v) in c.iter_mut().enumerate() {
            if a != axis {
                *v += g;
            } else {
                *v += g - 1 + along;
            }
        }
        c
    };
    exec.forall3(clock, &kernels::WAVESPEED, fd, |i, j, k| {
        let l = shift(i, j, k, 0);
        let r = shift(i, j, k, 1);
        let il = at(l[0], l[1], l[2]);
        let ir = at(r[0], r[1], r[2]);
        let sl = va[il].abs() + cs[il];
        let sr = va[ir].abs() + cs[ir];
        ws[fat(i, j, k)] = sl.max(sr);
    })
}

/// Physical flux of conserved variable `var` along `axis`, given the
/// local conserved value and primitives.
#[inline]
pub(crate) fn phys_flux(var: usize, axis: usize, q: f64, va: f64, p: f64) -> f64 {
    // F(ρ) = ρ·v_a; F(m_b) = m_b·v_a + δ_{ab}·p; F(E) = (E + p)·v_a.
    match var {
        RHO => q * va,
        EN => (q + p) * va,
        _ => {
            let b = var - MX;
            q * va + if b == axis { p } else { 0.0 }
        }
    }
}

/// Compute the Rusanov flux of `var` along `axis` into `state.flux`.
pub fn face_flux(
    state: &mut HydroState,
    exec: &mut Executor,
    clock: &mut RankClock,
    axis: usize,
    var: usize,
) -> Result<(), GpuError> {
    let fd = state.face_dims(axis);
    let dims = state.u.dims();
    let at = indexer(dims);
    let fat = indexer(fd);
    let g = state.sub.ghost;
    let (u, prim, ws, fx) = (&state.u, &state.prim, &state.wavespeed, &mut state.flux);
    let q = u.var(var);
    let va = prim.var(VX + axis);
    let p = prim.var(PR);
    let ws = &ws[..];
    let fx = &mut fx[..];
    let shift = move |i: usize, j: usize, k: usize, along: usize| -> [usize; 3] {
        let mut c = [i, j, k];
        for (a, v) in c.iter_mut().enumerate() {
            if a != axis {
                *v += g;
            } else {
                *v += g - 1 + along;
            }
        }
        c
    };
    exec.forall3(clock, &kernels::FLUX, fd, |i, j, k| {
        let l = shift(i, j, k, 0);
        let r = shift(i, j, k, 1);
        let il = at(l[0], l[1], l[2]);
        let ir = at(r[0], r[1], r[2]);
        let fl = phys_flux(var, axis, q[il], va[il], p[il]);
        let fr = phys_flux(var, axis, q[ir], va[ir], p[ir]);
        let s = ws[fat(i, j, k)];
        fx[fat(i, j, k)] = 0.5 * (fl + fr) - 0.5 * s * (q[ir] - q[il]);
    })
}

/// Apply the flux-difference update of `var` along `axis` to the
/// TARGET field set (`state.u0`): `tgt -= dt/dx · (F_hi − F_lo)`.
pub fn apply_update(
    state: &mut HydroState,
    exec: &mut Executor,
    clock: &mut RankClock,
    axis: usize,
    var: usize,
    dt: f64,
) -> Result<(), GpuError> {
    let ext = state.ext();
    let fd = state.face_dims(axis);
    let dims = state.u.dims();
    let at = indexer(dims);
    let fat = indexer(fd);
    let g = state.sub.ghost;
    let scale = dt / state.dx();
    let (u0, fx) = (&mut state.u0, &state.flux);
    let tgt = u0.var_mut(var);
    let fx = &fx[..];
    exec.forall3(clock, &kernels::UPDATE, ext, |i, j, k| {
        let mut lo = [i, j, k];
        let mut hi = [i, j, k];
        hi[axis] += 1;
        let f_lo = fx[fat(lo[0], lo[1], lo[2])];
        let f_hi = fx[fat(hi[0], hi[1], hi[2])];
        lo = [i + g, j + g, k + g];
        tgt[at(lo[0], lo[1], lo[2])] -= scale * (f_hi - f_lo);
    })
}

/// One full spatial sweep: for each axis, wavespeeds then per-variable
/// flux + update (the 33 kernels per stage).
pub fn sweep(
    state: &mut HydroState,
    exec: &mut Executor,
    clock: &mut RankClock,
    dt: f64,
) -> Result<(), GpuError> {
    for axis in 0..3 {
        wavespeeds(state, exec, clock, axis)?;
        for var in 0..crate::state::NCONS {
            face_flux(state, exec, clock, axis, var)?;
            apply_update(state, exec, clock, axis, var, dt)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eos::primitives;
    use crate::state::{GAMMA, MY, MZ, NCONS};
    use hsim_mesh::{GlobalGrid, Subdomain};
    use hsim_raja::{CpuModel, Fidelity, Target};

    fn setup(n: usize) -> (HydroState, Executor, RankClock) {
        let grid = GlobalGrid::new(n, n, n);
        let sub = Subdomain::new([0, 0, 0], [n, n, n], 1);
        let state = HydroState::new(grid, sub, Fidelity::Full);
        let exec = Executor::new(Target::CpuSeq, CpuModel::haswell_fixed(), Fidelity::Full);
        (state, exec, RankClock::new(0))
    }

    /// Fill ghosts of every conserved field by copying the nearest
    /// owned plane (zero-gradient, good enough for uniform tests).
    fn fill_ghosts_uniform(state: &mut HydroState, rho: f64, m: [f64; 3], en: f64) {
        state.u.fill(RHO, rho);
        state.u.fill(MX, m[0]);
        state.u.fill(MY, m[1]);
        state.u.fill(MZ, m[2]);
        state.u.fill(EN, en);
        let u = state.u.clone();
        state.u0.copy_from(&u);
    }

    #[test]
    fn uniform_state_is_a_fixed_point() {
        let (mut state, mut exec, mut clock) = setup(6);
        // ρ=1, v=(0.3, 0, 0), p=0.5:
        // m=(0.3,0,0), E = p/(γ-1) + ½ρv² = 1.25 + 0.045.
        let en = 0.5 / (GAMMA - 1.0) + 0.5 * 0.3 * 0.3;
        fill_ghosts_uniform(&mut state, 1.0, [0.3, 0.0, 0.0], en);
        primitives(&mut state, &mut exec, &mut clock).unwrap();
        sweep(&mut state, &mut exec, &mut clock, 0.01).unwrap();
        // u0 (the target) must be unchanged: uniform flow has zero
        // flux divergence.
        for v in 0..NCONS {
            let expect = [1.0, 0.3, 0.0, 0.0, en][v];
            for k in 0..6 {
                for j in 0..6 {
                    for i in 0..6 {
                        let got = state.u0.get(v, i, j, k);
                        assert!(
                            (got - expect).abs() < 1e-13,
                            "var {v} at ({i},{j},{k}): {got} vs {expect}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn pressure_jump_accelerates_gas_toward_low_pressure() {
        let (mut state, mut exec, mut clock) = setup(8);
        // High pressure in the low-x half.
        fill_ghosts_uniform(&mut state, 1.0, [0.0; 3], 1.0 / (GAMMA - 1.0));
        for k in 0..8 {
            for j in 0..8 {
                for i in 0..4 {
                    state.u.set(EN, i, j, k, 10.0 / (GAMMA - 1.0));
                }
            }
        }
        // Mirror into ghosts crudely (uniform in y/z, reflect x).
        state.u.reflect_into_ghost(EN, 0, hsim_mesh::Side::Low, 1.0);
        state
            .u
            .reflect_into_ghost(EN, 0, hsim_mesh::Side::High, 1.0);
        let u = state.u.clone();
        state.u0.copy_from(&u);
        primitives(&mut state, &mut exec, &mut clock).unwrap();
        sweep(&mut state, &mut exec, &mut clock, 0.001).unwrap();
        // Momentum at the interface should point in +x (toward low p).
        let m_interface = state.u0.get(MX, 4, 4, 4);
        assert!(m_interface > 0.0, "m_x at interface: {m_interface}");
        // Far from the interface nothing moved yet… (first-order
        // scheme: only zones adjacent to the jump change).
        let m_far = state.u0.get(MX, 1, 4, 4);
        assert!(m_far.abs() < 1e-12, "far momentum {m_far}");
    }

    #[test]
    fn sweep_conserves_mass_in_a_periodic_like_uniform_box() {
        let (mut state, mut exec, mut clock) = setup(6);
        let en = 1.0 / (GAMMA - 1.0);
        fill_ghosts_uniform(&mut state, 2.0, [0.0; 3], en);
        primitives(&mut state, &mut exec, &mut clock).unwrap();
        let before = state.u0.sum_owned(RHO);
        sweep(&mut state, &mut exec, &mut clock, 0.01).unwrap();
        let after = state.u0.sum_owned(RHO);
        assert!((before - after).abs() < 1e-12);
    }

    #[test]
    fn wavespeed_of_quiescent_gas_is_sound_speed() {
        let (mut state, mut exec, mut clock) = setup(4);
        let en = 0.4 / (GAMMA - 1.0);
        fill_ghosts_uniform(&mut state, 1.0, [0.0; 3], en);
        primitives(&mut state, &mut exec, &mut clock).unwrap();
        wavespeeds(&mut state, &mut exec, &mut clock, 0).unwrap();
        let cs = (GAMMA * 0.4f64).sqrt();
        let idx = state.face_idx(0, 2, 2, 2);
        assert!((state.wavespeed[idx] - cs).abs() < 1e-12);
    }

    #[test]
    fn kernel_launch_counts_match_structure() {
        let (mut state, mut exec, mut clock) = setup(4);
        let en = 0.4 / (GAMMA - 1.0);
        fill_ghosts_uniform(&mut state, 1.0, [0.0; 3], en);
        primitives(&mut state, &mut exec, &mut clock).unwrap();
        exec.registry.clear();
        sweep(&mut state, &mut exec, &mut clock, 0.01).unwrap();
        // 3 axes × (1 wavespeed + 5 flux + 5 update) = 33 launches.
        assert_eq!(exec.registry.total_launches(), 33);
    }
}
