//! The Sod shock tube: a second validation problem with an *exact*
//! reference solution.
//!
//! A diaphragm at x = 0.5 separates two ideal-gas states; removing it
//! launches a right-moving shock and contact discontinuity and a
//! left-moving rarefaction. The exact solution of this Riemann problem
//! is computable to machine precision ([`exact_solution`] implements
//! the classic Newton iteration on the star-region pressure, Toro ch.
//! 4), giving the hydro substrate a pointwise-checkable reference —
//! stronger validation than the Sedov similarity scaling.

use crate::state::{HydroState, EN, GAMMA, MX, MY, MZ, RHO};
use hsim_raja::Fidelity;

/// One side's primitive state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GasState {
    pub rho: f64,
    pub u: f64,
    pub p: f64,
}

/// Sod's classic setup.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SodConfig {
    pub left: GasState,
    pub right: GasState,
    /// Diaphragm position as a fraction of the x extent.
    pub diaphragm: f64,
}

impl Default for SodConfig {
    fn default() -> Self {
        SodConfig {
            left: GasState {
                rho: 1.0,
                u: 0.0,
                p: 1.0,
            },
            right: GasState {
                rho: 0.125,
                u: 0.0,
                p: 0.1,
            },
            diaphragm: 0.5,
        }
    }
}

/// Initialize the tube along x (uniform in y, z; reflecting walls are
/// far enough for short runs).
pub fn init(state: &mut HydroState, cfg: &SodConfig) {
    state.t = 0.0;
    state.cycle = 0;
    if state.fidelity == Fidelity::CostOnly {
        return;
    }
    let sub = state.sub;
    let grid = state.grid;
    let x_diaphragm = cfg.diaphragm * grid.lx;
    for k in 0..sub.extent(2) {
        for j in 0..sub.extent(1) {
            for i in 0..sub.extent(0) {
                let (x, _, _) = grid.zone_center(i + sub.lo[0], j + sub.lo[1], k + sub.lo[2]);
                let s = if x < x_diaphragm { cfg.left } else { cfg.right };
                state.u.set(RHO, i, j, k, s.rho);
                state.u.set(MX, i, j, k, s.rho * s.u);
                state.u.set(MY, i, j, k, 0.0);
                state.u.set(MZ, i, j, k, 0.0);
                let e = s.p / (GAMMA - 1.0) + 0.5 * s.rho * s.u * s.u;
                state.u.set(EN, i, j, k, e);
            }
        }
    }
    // Ghosts: copy the nearest owned state (transmissive-ish start).
    for var in 0..crate::state::NCONS {
        for axis in 0..3 {
            state
                .u
                .reflect_into_ghost(var, axis, hsim_mesh::Side::Low, 1.0);
            state
                .u
                .reflect_into_ghost(var, axis, hsim_mesh::Side::High, 1.0);
        }
    }
}

fn sound_speed(s: &GasState) -> f64 {
    (GAMMA * s.p / s.rho).sqrt()
}

/// Pressure function f_K(p) and its derivative (Toro eq. 4.6–4.37).
fn pressure_fn(p: f64, s: &GasState) -> (f64, f64) {
    let a = sound_speed(s);
    if p > s.p {
        // Shock branch.
        let ak = 2.0 / ((GAMMA + 1.0) * s.rho);
        let bk = (GAMMA - 1.0) / (GAMMA + 1.0) * s.p;
        let sq = (ak / (p + bk)).sqrt();
        let f = (p - s.p) * sq;
        let df = sq * (1.0 - (p - s.p) / (2.0 * (p + bk)));
        (f, df)
    } else {
        // Rarefaction branch.
        let pr = p / s.p;
        let g1 = (GAMMA - 1.0) / (2.0 * GAMMA);
        let f = 2.0 * a / (GAMMA - 1.0) * (pr.powf(g1) - 1.0);
        let df = 1.0 / (s.rho * a) * pr.powf(-(GAMMA + 1.0) / (2.0 * GAMMA));
        (f, df)
    }
}

/// The star-region (pressure, velocity) of the Riemann problem.
pub fn star_state(left: &GasState, right: &GasState) -> (f64, f64) {
    // Two-rarefaction initial guess.
    let al = sound_speed(left);
    let ar = sound_speed(right);
    let g1 = (GAMMA - 1.0) / (2.0 * GAMMA);
    let mut p = ((al + ar - 0.5 * (GAMMA - 1.0) * (right.u - left.u))
        / (al / left.p.powf(g1) + ar / right.p.powf(g1)))
    .powf(1.0 / g1);
    p = p.max(1e-12);
    for _ in 0..50 {
        let (fl, dfl) = pressure_fn(p, left);
        let (fr, dfr) = pressure_fn(p, right);
        let f = fl + fr + (right.u - left.u);
        let df = dfl + dfr;
        let dp = f / df;
        p = (p - dp).max(1e-12);
        if (dp / p).abs() < 1e-12 {
            break;
        }
    }
    let (fl, _) = pressure_fn(p, left);
    let (fr, _) = pressure_fn(p, right);
    let u = 0.5 * (left.u + right.u) + 0.5 * (fr - fl);
    (p, u)
}

/// Exact solution of the Riemann problem sampled at similarity
/// coordinate `xi = (x − x0) / t`: returns the primitive state there
/// (Toro §4.5 sampling).
pub fn exact_solution(left: &GasState, right: &GasState, xi: f64) -> GasState {
    let (p_star, u_star) = star_state(left, right);
    let al = sound_speed(left);
    let ar = sound_speed(right);
    let g = GAMMA;

    if xi < u_star {
        // Left of the contact.
        if p_star > left.p {
            // Left shock.
            let sl = left.u
                - al * ((g + 1.0) / (2.0 * g) * p_star / left.p + (g - 1.0) / (2.0 * g)).sqrt();
            if xi < sl {
                *left
            } else {
                let ratio = p_star / left.p;
                let rho = left.rho * ((g + 1.0) / (g - 1.0) * ratio + 1.0)
                    / ((g + 1.0) / (g - 1.0) + ratio);
                GasState {
                    rho,
                    u: u_star,
                    p: p_star,
                }
            }
        } else {
            // Left rarefaction.
            let a_star = al * (p_star / left.p).powf((g - 1.0) / (2.0 * g));
            let head = left.u - al;
            let tail = u_star - a_star;
            if xi < head {
                *left
            } else if xi > tail {
                let rho = left.rho * (p_star / left.p).powf(1.0 / g);
                GasState {
                    rho,
                    u: u_star,
                    p: p_star,
                }
            } else {
                // Inside the fan.
                let u = 2.0 / (g + 1.0) * (al + (g - 1.0) / 2.0 * left.u + xi);
                let a = 2.0 / (g + 1.0) * (al + (g - 1.0) / 2.0 * (left.u - xi));
                let rho = left.rho * (a / al).powf(2.0 / (g - 1.0));
                let p = left.p * (a / al).powf(2.0 * g / (g - 1.0));
                GasState { rho, u, p }
            }
        }
    } else {
        // Right of the contact (mirrored logic).
        if p_star > right.p {
            let sr = right.u
                + ar * ((g + 1.0) / (2.0 * g) * p_star / right.p + (g - 1.0) / (2.0 * g)).sqrt();
            if xi > sr {
                *right
            } else {
                let ratio = p_star / right.p;
                let rho = right.rho * ((g + 1.0) / (g - 1.0) * ratio + 1.0)
                    / ((g + 1.0) / (g - 1.0) + ratio);
                GasState {
                    rho,
                    u: u_star,
                    p: p_star,
                }
            }
        } else {
            let a_star = ar * (p_star / right.p).powf((g - 1.0) / (2.0 * g));
            let head = right.u + ar;
            let tail = u_star + a_star;
            if xi > head {
                *right
            } else if xi < tail {
                let rho = right.rho * (p_star / right.p).powf(1.0 / g);
                GasState {
                    rho,
                    u: u_star,
                    p: p_star,
                }
            } else {
                let u = 2.0 / (g + 1.0) * (-ar + (g - 1.0) / 2.0 * right.u + xi);
                let a = 2.0 / (g + 1.0) * (ar - (g - 1.0) / 2.0 * (right.u - xi));
                let rho = right.rho * (a / ar).powf(2.0 / (g - 1.0));
                let p = right.p * (a / ar).powf(2.0 * g / (g - 1.0));
                GasState { rho, u, p }
            }
        }
    }
}

/// Extract the density along the tube axis (averaged over y, z).
pub fn axial_density(state: &HydroState) -> Vec<f64> {
    let e = state.ext();
    let mut out = vec![0.0; e[0]];
    for (i, v) in out.iter_mut().enumerate() {
        let mut sum = 0.0;
        for k in 0..e[2] {
            for j in 0..e[1] {
                sum += state.u.get(RHO, i, j, k);
            }
        }
        *v = sum / (e[1] * e[2]) as f64;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle::{step, SoloCoupler};
    use hsim_mesh::{GlobalGrid, Subdomain};
    use hsim_raja::{CpuModel, Executor, Target};
    use hsim_time::RankClock;

    #[test]
    fn star_state_matches_toro_reference() {
        // Toro's Test 1 (the Sod tube): p* = 0.30313, u* = 0.92745.
        let cfg = SodConfig::default();
        let (p, u) = star_state(&cfg.left, &cfg.right);
        assert!((p - 0.30313).abs() < 5e-5, "p* = {p}");
        assert!((u - 0.92745).abs() < 5e-5, "u* = {u}");
    }

    #[test]
    fn exact_solution_limits_are_the_input_states() {
        let cfg = SodConfig::default();
        let far_left = exact_solution(&cfg.left, &cfg.right, -10.0);
        let far_right = exact_solution(&cfg.left, &cfg.right, 10.0);
        assert_eq!(far_left, cfg.left);
        assert_eq!(far_right, cfg.right);
    }

    #[test]
    fn exact_solution_is_monotone_in_density_across_the_wave_fan() {
        // For Sod: density decreases monotonically through the
        // rarefaction, is constant between tail and contact, drops at
        // the contact, and is constant to the shock.
        let cfg = SodConfig::default();
        let mut last = f64::INFINITY;
        for i in 0..200 {
            let xi = -1.5 + 3.0 * i as f64 / 199.0;
            let s = exact_solution(&cfg.left, &cfg.right, xi);
            assert!(s.rho > 0.0 && s.p > 0.0);
            // Density never increases moving right (for this problem).
            assert!(s.rho <= last + 1e-12, "rho rose at xi={xi}");
            last = s.rho;
        }
    }

    #[test]
    fn simulated_tube_matches_exact_solution_in_l1() {
        let n = 128;
        let grid = GlobalGrid::new(n, 4, 4);
        let sub = Subdomain::new([0, 0, 0], [n, 4, 4], 1);
        let mut st = HydroState::new(grid, sub, Fidelity::Full);
        let cfg = SodConfig::default();
        init(&mut st, &cfg);
        let mut exec = Executor::new(Target::CpuSeq, CpuModel::haswell_fixed(), Fidelity::Full);
        let mut clock = RankClock::new(0);
        let mut solo = SoloCoupler;
        let t_end = 0.15;
        let mut guard = 0;
        while st.t < t_end {
            step(&mut st, &mut exec, &mut clock, &mut solo, 0.3, 1.0).unwrap();
            guard += 1;
            assert!(guard < 5000);
        }
        let sim = axial_density(&st);
        let (dx, _, _) = grid.spacing();
        let x0 = cfg.diaphragm * grid.lx;
        let mut l1 = 0.0;
        for (i, rho) in sim.iter().enumerate() {
            let x = (i as f64 + 0.5) * dx;
            let exact = exact_solution(&cfg.left, &cfg.right, (x - x0) / st.t);
            l1 += (rho - exact.rho).abs();
        }
        l1 /= n as f64;
        // First-order scheme at 128 zones: L1 density error ~ a few
        // percent of the density scale.
        assert!(l1 < 0.035, "L1 density error {l1}");
        // The contact/shock plateau densities are present: min/max of
        // the simulated profile bracket the exact extreme states.
        let max = sim.iter().cloned().fold(0.0, f64::max);
        let min = sim.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!((0.9..=1.0 + 1e-6).contains(&max));
        assert!(((0.125 - 1e-6)..0.2).contains(&min));
    }

    #[test]
    fn tube_conserves_mass_with_reflecting_walls() {
        let n = 64;
        let grid = GlobalGrid::new(n, 4, 4);
        let sub = Subdomain::new([0, 0, 0], [n, 4, 4], 1);
        let mut st = HydroState::new(grid, sub, Fidelity::Full);
        init(&mut st, &SodConfig::default());
        let m0 = st.total_mass();
        let mut exec = Executor::new(Target::CpuSeq, CpuModel::haswell_fixed(), Fidelity::Full);
        let mut clock = RankClock::new(0);
        let mut solo = SoloCoupler;
        for _ in 0..30 {
            step(&mut st, &mut exec, &mut clock, &mut solo, 0.3, 1.0).unwrap();
        }
        assert!(((st.total_mass() - m0) / m0).abs() < 1e-10);
    }
}
