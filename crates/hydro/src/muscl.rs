//! Second-order MUSCL reconstruction (extension beyond the paper).
//!
//! The first-order scheme smears shocks over several zones; MUSCL
//! reconstructs minmod-limited linear profiles in each zone and feeds
//! left/right face states to the Rusanov flux, halving the L1 error on
//! the Sod tube at the same resolution. It needs **two** ghost layers
//! (the limiter looks one zone beyond the face pair), so it is used by
//! the validation problems and examples; the figure runner keeps the
//! paper's one-layer halos.
//!
//! Kernel structure stays fine-grained: per axis, one reconstruction
//! kernel per conserved variable (writing both face sides), one
//! face-primitive kernel, then per-variable flux and update — ~17
//! kernels per axis, ~2× the first-order count, which is also the
//! realistic cost ratio of going second order.

use hsim_gpu::GpuError;
use hsim_raja::{Executor, Fidelity};
use hsim_time::RankClock;

use crate::eos::indexer;
use crate::kernels;
use crate::state::{HydroState, EN, GAMMA, MX, MY, MZ, NCONS, P_FLOOR, RHO, RHO_FLOOR};

/// Spatial reconstruction order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reconstruction {
    /// Piecewise-constant (the default scheme; ghost width 1).
    FirstOrder,
    /// Minmod-limited piecewise-linear (ghost width ≥ 2).
    Muscl,
}

#[inline]
pub(crate) fn minmod(a: f64, b: f64) -> f64 {
    // Select form (two independent picks instead of an if/else-if
    // chain) so the limiter compiles to branchless selects inside
    // vectorized face loops. The selected values are identical to the
    // classic `if a*b <= 0.0 { 0.0 } else if |a| < |b| { a } else
    // { b }` for every input, including opposite signs and zeros.
    let smaller = if a.abs() < b.abs() { a } else { b };
    if a * b <= 0.0 {
        0.0
    } else {
        smaller
    }
}

/// Face-state scratch for one axis: left/right reconstructed conserved
/// variables plus derived face primitives.
struct FaceStates {
    ql: Vec<Vec<f64>>,
    qr: Vec<Vec<f64>>,
    /// (va_l, va_r, p_l, p_r, s_max) per face.
    val: Vec<f64>,
    var_: Vec<f64>,
    pl: Vec<f64>,
    pr: Vec<f64>,
    smax: Vec<f64>,
}

impl FaceStates {
    fn new(len: usize) -> Self {
        FaceStates {
            ql: (0..NCONS).map(|_| vec![0.0; len]).collect(),
            qr: (0..NCONS).map(|_| vec![0.0; len]).collect(),
            val: vec![0.0; len],
            var_: vec![0.0; len],
            pl: vec![0.0; len],
            pr: vec![0.0; len],
            smax: vec![0.0; len],
        }
    }
}

/// The second-order sweep: like [`crate::flux::sweep`] but with
/// minmod reconstruction. Requires `state.sub.ghost >= 2`.
pub fn sweep_muscl(
    st: &mut HydroState,
    exec: &mut Executor,
    clock: &mut RankClock,
    dt: f64,
) -> Result<(), GpuError> {
    assert!(
        st.sub.ghost >= 2,
        "MUSCL needs two ghost layers (got {})",
        st.sub.ghost
    );
    let dims = st.u.dims();
    let at = indexer(dims);
    let g = st.sub.ghost;
    let full = exec.fidelity == Fidelity::Full;

    for axis in 0..3 {
        let fd = st.face_dims(axis);
        let fat = indexer(fd);
        let n_faces = fd[0] * fd[1] * fd[2];
        let mut fs = FaceStates::new(if full { n_faces } else { 1 });

        // Reconstruction kernels: one per conserved variable.
        for var in 0..NCONS {
            let q = st.u.var(var);
            let (ql, qr) = (&mut fs.ql[var][..], &mut fs.qr[var][..]);
            let at = &at;
            let fat = &fat;
            exec.forall3(clock, &kernels::MUSCL_RECON, fd, |i, j, k| {
                // Allocated coordinates along the axis: face f is
                // between zones f+g-1 (L) and f+g (R).
                let mut c = [i, j, k];
                for (a, v) in c.iter_mut().enumerate() {
                    if a != axis {
                        *v += g;
                    }
                }
                let mut lm = c;
                let mut l = c;
                let mut r = c;
                let mut rp = c;
                lm[axis] += g - 2;
                l[axis] += g - 1;
                r[axis] += g;
                rp[axis] += g + 1;
                let q_lm = q[at(lm[0], lm[1], lm[2])];
                let q_l = q[at(l[0], l[1], l[2])];
                let q_r = q[at(r[0], r[1], r[2])];
                let q_rp = q[at(rp[0], rp[1], rp[2])];
                let slope_l = minmod(q_l - q_lm, q_r - q_l);
                let slope_r = minmod(q_r - q_l, q_rp - q_r);
                let f = fat(i, j, k);
                ql[f] = q_l + 0.5 * slope_l;
                qr[f] = q_r - 0.5 * slope_r;
            })?;
        }

        // Face primitives + max wavespeed from the reconstructed
        // states (one kernel).
        {
            let (ql, qr) = (&fs.ql, &fs.qr);
            let (val, var_, pl, pr, smax) = (
                &mut fs.val,
                &mut fs.var_,
                &mut fs.pl,
                &mut fs.pr,
                &mut fs.smax,
            );
            let fat = &fat;
            let prim = move |rho: f64, mx: f64, my: f64, mz: f64, en: f64| -> (f64, f64, f64) {
                let r = rho.max(RHO_FLOOR);
                let v = [mx / r, my / r, mz / r];
                let ke = 0.5 * r * (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]);
                let p = ((GAMMA - 1.0) * (en - ke)).max(P_FLOOR);
                let cs = (GAMMA * p / r).sqrt();
                (v[axis], p, cs)
            };
            exec.forall3(clock, &kernels::FACE_PRIMS, fd, |i, j, k| {
                let f = fat(i, j, k);
                let (vl, p_l, cl) = prim(ql[RHO][f], ql[MX][f], ql[MY][f], ql[MZ][f], ql[EN][f]);
                let (vr, p_r, cr) = prim(qr[RHO][f], qr[MX][f], qr[MY][f], qr[MZ][f], qr[EN][f]);
                val[f] = vl;
                var_[f] = vr;
                pl[f] = p_l;
                pr[f] = p_r;
                smax[f] = (vl.abs() + cl).max(vr.abs() + cr);
            })?;
        }

        // Per-variable Rusanov flux from face states + update.
        for var in 0..NCONS {
            {
                let (ql, qr) = (&fs.ql[var], &fs.qr[var]);
                let (val, var_, pl, pr, smax) = (&fs.val, &fs.var_, &fs.pl, &fs.pr, &fs.smax);
                let fx = &mut st.flux[..];
                let fat = &fat;
                exec.forall3(clock, &kernels::FLUX, fd, |i, j, k| {
                    let f = fat(i, j, k);
                    let fl = phys_flux_axis(var, axis, ql[f], val[f], pl[f]);
                    let fr = phys_flux_axis(var, axis, qr[f], var_[f], pr[f]);
                    fx[f] = 0.5 * (fl + fr) - 0.5 * smax[f] * (qr[f] - ql[f]);
                })?;
            }
            crate::flux::apply_update(st, exec, clock, axis, var, dt)?;
        }
    }
    Ok(())
}

/// Physical flux of conserved variable `var` along `axis` given the
/// face-reconstructed value and primitives.
#[inline]
pub(crate) fn phys_flux_axis(var: usize, axis: usize, q: f64, va: f64, p: f64) -> f64 {
    match var {
        RHO => q * va,
        EN => (q + p) * va,
        _ => q * va + if var - MX == axis { p } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle::SoloCoupler;
    use crate::sod::{self, axial_density, exact_solution, SodConfig};
    use hsim_mesh::{GlobalGrid, Subdomain};
    use hsim_raja::{CpuModel, Target};

    fn sod_l1(n: usize, recon: Reconstruction) -> f64 {
        let grid = GlobalGrid::new(n, 4, 4);
        let ghost = match recon {
            Reconstruction::FirstOrder => 1,
            Reconstruction::Muscl => 2,
        };
        let sub = Subdomain::new([0, 0, 0], [n, 4, 4], ghost);
        let mut st = HydroState::new(grid, sub, Fidelity::Full);
        let cfg = SodConfig::default();
        sod::init(&mut st, &cfg);
        let mut exec = Executor::new(Target::CpuSeq, CpuModel::haswell_fixed(), Fidelity::Full);
        let mut clock = RankClock::new(0);
        let mut solo = SoloCoupler;
        let t_end = 0.15;
        while st.t < t_end {
            crate::cycle::step_with(&mut st, &mut exec, &mut clock, &mut solo, 0.25, 1.0, recon)
                .unwrap();
        }
        let sim = axial_density(&st);
        let (dx, _, _) = grid.spacing();
        let x0 = cfg.diaphragm * grid.lx;
        let mut l1 = 0.0;
        for (i, rho) in sim.iter().enumerate() {
            let x = (i as f64 + 0.5) * dx;
            l1 += (rho - exact_solution(&cfg.left, &cfg.right, (x - x0) / st.t).rho).abs();
        }
        l1 / n as f64
    }

    #[test]
    fn minmod_limits_correctly() {
        assert_eq!(minmod(1.0, 2.0), 1.0);
        assert_eq!(minmod(2.0, 1.0), 1.0);
        assert_eq!(minmod(-1.0, -3.0), -1.0);
        assert_eq!(minmod(1.0, -1.0), 0.0);
        assert_eq!(minmod(0.0, 5.0), 0.0);
    }

    #[test]
    fn muscl_uniform_state_is_a_fixed_point() {
        let grid = GlobalGrid::new(6, 6, 6);
        let sub = Subdomain::new([0, 0, 0], [6, 6, 6], 2);
        let mut st = HydroState::new(grid, sub, Fidelity::Full);
        let en = 0.5 / (GAMMA - 1.0);
        st.u.fill(RHO, 1.0);
        st.u.fill(EN, en);
        let u = st.u.clone();
        st.u0.copy_from(&u);
        let mut exec = Executor::new(Target::CpuSeq, CpuModel::haswell_fixed(), Fidelity::Full);
        let mut clock = RankClock::new(0);
        crate::eos::primitives(&mut st, &mut exec, &mut clock).unwrap();
        sweep_muscl(&mut st, &mut exec, &mut clock, 0.01).unwrap();
        for k in 0..6 {
            for j in 0..6 {
                for i in 0..6 {
                    assert!((st.u0.get(RHO, i, j, k) - 1.0).abs() < 1e-13);
                    assert!((st.u0.get(EN, i, j, k) - en).abs() < 1e-13);
                }
            }
        }
    }

    #[test]
    fn muscl_halves_the_sod_error() {
        let first = sod_l1(96, Reconstruction::FirstOrder);
        let second = sod_l1(96, Reconstruction::Muscl);
        assert!(
            second < first * 0.65,
            "MUSCL L1 {second:.4} should be well below first-order {first:.4}"
        );
    }

    #[test]
    fn muscl_conserves_mass_and_energy() {
        let grid = GlobalGrid::new(16, 16, 16);
        let sub = Subdomain::new([0, 0, 0], [16, 16, 16], 2);
        let mut st = HydroState::new(grid, sub, Fidelity::Full);
        crate::sedov::init(&mut st, &crate::sedov::SedovConfig::default());
        let m0 = st.total_mass();
        let e0 = st.total_energy();
        let mut exec = Executor::new(Target::CpuSeq, CpuModel::haswell_fixed(), Fidelity::Full);
        let mut clock = RankClock::new(0);
        let mut solo = SoloCoupler;
        for _ in 0..5 {
            crate::cycle::step_with(
                &mut st,
                &mut exec,
                &mut clock,
                &mut solo,
                0.25,
                1.0,
                Reconstruction::Muscl,
            )
            .unwrap();
        }
        assert!(((st.total_mass() - m0) / m0).abs() < 1e-10);
        assert!(((st.total_energy() - e0) / e0).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "two ghost layers")]
    fn muscl_rejects_single_ghost() {
        let grid = GlobalGrid::new(6, 6, 6);
        let sub = Subdomain::new([0, 0, 0], [6, 6, 6], 1);
        let mut st = HydroState::new(grid, sub, Fidelity::Full);
        let mut exec = Executor::new(Target::CpuSeq, CpuModel::haswell_fixed(), Fidelity::Full);
        let mut clock = RankClock::new(0);
        let _ = sweep_muscl(&mut st, &mut exec, &mut clock, 0.01);
    }
}
