//! The timestep driver: one hydro cycle ≈ 85 kernel launches.
//!
//! Structure (Heun / two-stage RK, unsplit finite volume):
//!
//! ```text
//! save          u0 ← u                              5 kernels
//! stage 1       bc(u), exchange(u), primitives(u)   ≤5·faces + 3
//!               dt = CFL min-reduce ⊕ allreduce     1 + collective
//!               sweep: u0 -= dt·L(u)                33
//!               swap(u, u0)                         —
//! stage 2       combine: u0 ← ½u0 + ½u              5
//!               bc(u), exchange(u), primitives(u)   ≤5·faces + 3
//!               sweep: u0 -= ½dt·L(u)               33
//!               swap(u, u0)                         —
//! ```
//!
//! Three GPU syncs per cycle (dt readback, stage boundary, cycle end)
//! — every rank executes the same count, which the shared-device
//! rendezvous requires.
//!
//! The launch counts above are *charged* per fine-grained kernel
//! (virtual time, telemetry, and figures are defined in those terms),
//! but since the cache-blocking rework the arithmetic itself runs
//! through the fused tiled kernels in [`crate::fused`], which replay
//! the same charge sequence and produce bitwise-identical states.

use hsim_gpu::GpuError;
use hsim_raja::Executor;
use hsim_time::RankClock;

use crate::bc;
use crate::eos::cfl_dt;
use crate::fused::{combine, primitives, save_state, sweep, sweep_muscl};
use crate::muscl::Reconstruction;
use crate::state::HydroState;

/// Approximate kernel launches per cycle for an interior rank (the
/// Figure 11 caption's "80 kernels").
pub const LAUNCHES_PER_CYCLE_APPROX: u64 = 85;

/// Typed error from a [`Coupler`] operation: a halo exchange or a
/// global reduction that could not complete (dead peer, disconnected
/// channel, transport refusal). Carries the failing operation so the
/// runner can report which leg of the cycle died without panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoupleError {
    /// The coupler operation that failed (`"halo_send"`, `"halo_recv"`,
    /// `"allreduce_min"`).
    pub op: &'static str,
    /// Transport-level detail (the underlying error's display).
    pub detail: String,
}

impl std::fmt::Display for CoupleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "coupler {} failed: {}", self.op, self.detail)
    }
}

impl std::error::Error for CoupleError {}

/// Error from one hydro cycle: the portability/device layer or the
/// rank coupler. Both are recoverable by the fallible runner — neither
/// is ever surfaced as a panic.
#[derive(Debug)]
pub enum CycleError {
    /// Kernel dispatch / device-simulator failure.
    Gpu(GpuError),
    /// Halo-exchange or reduction failure.
    Couple(CoupleError),
}

impl From<GpuError> for CycleError {
    fn from(e: GpuError) -> Self {
        CycleError::Gpu(e)
    }
}

impl From<CoupleError> for CycleError {
    fn from(e: CoupleError) -> Self {
        CycleError::Couple(e)
    }
}

impl std::fmt::Display for CycleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CycleError::Gpu(e) => write!(f, "{e}"),
            CycleError::Couple(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CycleError {}

/// How a rank coordinates with its peers. The cooperative runner backs
/// this with simulated MPI; single-domain runs use [`SoloCoupler`].
pub trait Coupler {
    /// Exchange ghost layers of the conserved fields with neighbors
    /// (functional copy + virtual communication charge).
    fn exchange(
        &mut self,
        state: &mut HydroState,
        clock: &mut RankClock,
    ) -> Result<(), CoupleError>;

    /// Global minimum (the timestep reduction).
    fn allreduce_min(&mut self, x: f64, clock: &mut RankClock) -> Result<f64, CoupleError>;

    /// Exchange Lagrangian-particle payloads: `outbound[dst]` is the
    /// flat wire encoding of the particles this rank hands to rank
    /// `dst`; the return value is `inbound[src]`, the payloads every
    /// peer addressed to this rank. Backed by a priced all-to-all on
    /// the cooperative runner; the default is the solo identity (a
    /// single-domain run only ever addresses itself).
    fn migrate_particles(
        &mut self,
        outbound: Vec<Vec<f64>>,
        _clock: &mut RankClock,
    ) -> Result<Vec<Vec<f64>>, CoupleError> {
        Ok(outbound)
    }
}

/// Coupler for a single-domain run: no neighbors, identity reduction.
pub struct SoloCoupler;

impl Coupler for SoloCoupler {
    fn exchange(
        &mut self,
        _state: &mut HydroState,
        _clock: &mut RankClock,
    ) -> Result<(), CoupleError> {
        Ok(())
    }

    fn allreduce_min(&mut self, x: f64, _clock: &mut RankClock) -> Result<f64, CoupleError> {
        Ok(x)
    }
}

/// Per-cycle outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleStats {
    /// The timestep taken.
    pub dt: f64,
    /// Physical time after the cycle.
    pub t: f64,
    /// Kernel launches issued by this rank during the cycle.
    pub launches: u64,
}

/// Advance the state by one cycle. Returns the step's statistics.
///
/// `cfl` is the Courant factor (≤ 0.45 for this scheme); `fallback_dt`
/// is used as the timestep in cost-only fidelity (where the reduction
/// body is skipped) and as a cap in full fidelity.
pub fn step<C: Coupler>(
    st: &mut HydroState,
    exec: &mut Executor,
    clock: &mut RankClock,
    coupler: &mut C,
    cfl: f64,
    fallback_dt: f64,
) -> Result<CycleStats, CycleError> {
    step_with(
        st,
        exec,
        clock,
        coupler,
        cfl,
        fallback_dt,
        Reconstruction::FirstOrder,
    )
}

/// [`step`] with an explicit spatial reconstruction order (MUSCL needs
/// a two-layer halo; see [`crate::muscl`]).
#[allow(clippy::too_many_arguments)]
pub fn step_with<C: Coupler>(
    st: &mut HydroState,
    exec: &mut Executor,
    clock: &mut RankClock,
    coupler: &mut C,
    cfl: f64,
    fallback_dt: f64,
    recon: Reconstruction,
) -> Result<CycleStats, CycleError> {
    let launches_before = exec.registry.total_launches();
    let cycle_start = clock.now();
    let do_sweep = |st: &mut HydroState,
                    exec: &mut Executor,
                    clock: &mut RankClock,
                    dt: f64|
     -> Result<(), GpuError> {
        match recon {
            Reconstruction::FirstOrder => sweep(st, exec, clock, dt),
            Reconstruction::Muscl => sweep_muscl(st, exec, clock, dt),
        }
    };
    // Phase span helper: brackets a closure on the rank timeline.
    fn phase<R>(
        name: &'static str,
        clock: &mut RankClock,
        f: impl FnOnce(&mut RankClock) -> R,
    ) -> R {
        let t0 = clock.now();
        let r = f(clock);
        hsim_telemetry::rank_span(hsim_telemetry::Category::Phase, name, t0, clock.now());
        r
    }

    // Stage 0: snapshot.
    phase("save", clock, |clock| save_state(st, exec, clock))?;

    // Stage 1 inputs: ghosts of u^n.
    phase("halo", clock, |clock| -> Result<(), CycleError> {
        bc::apply(st, exec, clock)?;
        coupler.exchange(st, clock)?;
        Ok(())
    })?;
    phase("eos", clock, |clock| primitives(st, exec, clock))?;

    // Timestep: local CFL bound, device sync, global min.
    let dt = phase("cfl", clock, |clock| -> Result<f64, CycleError> {
        let local_dt = cfl_dt(st, exec, clock, cfl, fallback_dt)?;
        exec.sync(clock);
        Ok(coupler
            .allreduce_min(local_dt, clock)?
            .min(fallback_dt.max(1e-30)))
    })?;

    // Stage 1: u0 ← u^n − dt·L(u^n) = u*.
    phase("flux", clock, |clock| -> Result<(), CycleError> {
        do_sweep(st, exec, clock, dt)?;
        std::mem::swap(&mut st.u, &mut st.u0);
        exec.sync(clock);
        Ok(())
    })?;

    // Stage 2: u0 ← ½u^n + ½u*, then u0 −= ½dt·L(u*).
    phase("combine", clock, |clock| combine(st, exec, clock))?;
    phase("halo", clock, |clock| -> Result<(), CycleError> {
        bc::apply(st, exec, clock)?;
        coupler.exchange(st, clock)?;
        Ok(())
    })?;
    phase("eos", clock, |clock| primitives(st, exec, clock))?;
    phase("flux", clock, |clock| -> Result<(), CycleError> {
        do_sweep(st, exec, clock, 0.5 * dt)?;
        std::mem::swap(&mut st.u, &mut st.u0);
        exec.sync(clock);
        Ok(())
    })?;

    st.t += dt;
    st.cycle += 1;
    hsim_telemetry::count(hsim_telemetry::Counter::Cycles, 1);
    hsim_telemetry::time_stat(
        hsim_telemetry::TimeStat::CycleTime,
        clock.now() - cycle_start,
    );
    Ok(CycleStats {
        dt,
        t: st.t,
        launches: exec.registry.total_launches() - launches_before,
    })
}

/// Run `n` cycles, returning the last cycle's stats.
pub fn run<C: Coupler>(
    st: &mut HydroState,
    exec: &mut Executor,
    clock: &mut RankClock,
    coupler: &mut C,
    cfl: f64,
    fallback_dt: f64,
    n: u64,
) -> Result<CycleStats, CycleError> {
    let mut last = CycleStats {
        dt: 0.0,
        t: st.t,
        launches: 0,
    };
    for _ in 0..n {
        last = step(st, exec, clock, coupler, cfl, fallback_dt)?;
    }
    Ok(last)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sedov::{self, SedovConfig};
    use crate::state::{self, EN, GAMMA, RHO};
    use hsim_mesh::{GlobalGrid, Subdomain};
    use hsim_raja::{CpuModel, Fidelity, Target};

    fn setup(n: usize, fidelity: Fidelity) -> (HydroState, Executor, RankClock) {
        let grid = GlobalGrid::new(n, n, n);
        let sub = Subdomain::new([0, 0, 0], [n, n, n], 1);
        let state = HydroState::new(grid, sub, fidelity);
        let exec = Executor::new(Target::CpuSeq, CpuModel::haswell_fixed(), fidelity);
        (state, exec, RankClock::new(0))
    }

    #[test]
    fn quiescent_gas_stays_quiescent() {
        let (mut st, mut exec, mut clock) = setup(8, Fidelity::Full);
        st.init_ambient(1.0, 0.4);
        let mass0 = st.total_mass();
        let mut solo = SoloCoupler;
        for _ in 0..3 {
            step(&mut st, &mut exec, &mut clock, &mut solo, 0.4, 1.0).unwrap();
        }
        assert!((st.total_mass() - mass0).abs() < 1e-12);
        // No motion developed.
        assert!(st.u.sum_owned(state::MX).abs() < 1e-12);
        assert!(st.t > 0.0);
        assert_eq!(st.cycle, 3);
    }

    #[test]
    fn cycle_conserves_mass_and_energy_for_sedov() {
        let (mut st, mut exec, mut clock) = setup(12, Fidelity::Full);
        sedov::init(&mut st, &SedovConfig::default());
        let mass0 = st.total_mass();
        let e0 = st.total_energy();
        let mut solo = SoloCoupler;
        for _ in 0..5 {
            step(&mut st, &mut exec, &mut clock, &mut solo, 0.3, 1.0).unwrap();
        }
        let mass1 = st.total_mass();
        let e1 = st.total_energy();
        assert!(
            ((mass1 - mass0) / mass0).abs() < 1e-10,
            "mass drift {mass0} → {mass1}"
        );
        assert!(((e1 - e0) / e0).abs() < 1e-10, "energy drift {e0} → {e1}");
    }

    #[test]
    fn blast_wave_expands_symmetrically() {
        let (mut st, mut exec, mut clock) = setup(16, Fidelity::Full);
        sedov::init(&mut st, &SedovConfig::default());
        let mut solo = SoloCoupler;
        for _ in 0..8 {
            step(&mut st, &mut exec, &mut clock, &mut solo, 0.3, 1.0).unwrap();
        }
        // Density must be mirror-symmetric about the center.
        let rho = &st.u;
        for k in 0..16 {
            for j in 0..16 {
                for i in 0..8 {
                    let a = rho.get(RHO, i, j, k);
                    let b = rho.get(RHO, 15 - i, j, k);
                    assert!(
                        (a - b).abs() < 1e-9,
                        "asymmetry at ({i},{j},{k}): {a} vs {b}"
                    );
                }
            }
        }
        // The center evacuates, the shell is denser than ambient.
        let center = rho.get(RHO, 8, 8, 8);
        let max: f64 = (0..16).map(|i| rho.get(RHO, i, 8, 8)).fold(0.0, f64::max);
        assert!(center < 1.0, "center density {center}");
        assert!(max > 1.05, "shell density {max}");
    }

    #[test]
    fn launch_count_is_near_eighty() {
        let (mut st, mut exec, mut clock) = setup(8, Fidelity::Full);
        st.init_ambient(1.0, 0.4);
        let mut solo = SoloCoupler;
        let stats = step(&mut st, &mut exec, &mut clock, &mut solo, 0.4, 1.0).unwrap();
        // save 5 + bc 30 + prims 3 + cfl 1 + sweep 33 + combine 5 +
        // bc 30 + prims 3 + sweep 33 = 143 for a rank owning the whole
        // box (all 6 physical faces); an interior rank has no bc
        // launches: 83. The Figure-11 claim is the interior count.
        assert!(stats.launches >= 80, "launches {}", stats.launches);
        // Interior rank:
        let grid = GlobalGrid::new(24, 24, 24);
        let sub = Subdomain::new([8, 8, 8], [16, 16, 16], 1);
        let mut sti = HydroState::new(grid, sub, Fidelity::Full);
        sti.init_ambient(1.0, 0.4);
        let mut exec2 = Executor::new(Target::CpuSeq, CpuModel::haswell_fixed(), Fidelity::Full);
        let s2 = step(&mut sti, &mut exec2, &mut clock, &mut solo, 0.4, 1.0).unwrap();
        assert_eq!(s2.launches, 83, "interior launches");
    }

    #[test]
    fn cost_only_cycle_charges_time_without_running() {
        let (mut st, mut exec, mut clock) = setup(32, Fidelity::CostOnly);
        let mut solo = SoloCoupler;
        let stats = step(&mut st, &mut exec, &mut clock, &mut solo, 0.3, 0.01).unwrap();
        assert!(clock.now().as_nanos() > 0);
        assert!((stats.dt - 0.01).abs() < 1e-15);
        // The state arrays were never allocated at size.
        assert!(st.u.var(RHO).len() < 64);
    }

    #[test]
    fn cost_only_time_matches_full_time() {
        // The core fidelity guarantee: virtual cost is identical.
        let (mut st_full, mut exec_full, mut clock_full) = setup(10, Fidelity::Full);
        st_full.init_ambient(1.0, 0.4);
        let (mut st_cost, mut exec_cost, mut clock_cost) = setup(10, Fidelity::CostOnly);
        let mut solo = SoloCoupler;
        step(
            &mut st_full,
            &mut exec_full,
            &mut clock_full,
            &mut solo,
            0.3,
            1.0,
        )
        .unwrap();
        step(
            &mut st_cost,
            &mut exec_cost,
            &mut clock_cost,
            &mut solo,
            0.3,
            1.0,
        )
        .unwrap();
        assert_eq!(
            clock_full.now(),
            clock_cost.now(),
            "cost-only must charge identical virtual time"
        );
    }

    #[test]
    fn timestep_shrinks_when_the_blast_arrives() {
        let (mut st, mut exec, mut clock) = setup(12, Fidelity::Full);
        st.init_ambient(1.0, 1e-6);
        let mut solo = SoloCoupler;
        let quiet = step(&mut st, &mut exec, &mut clock, &mut solo, 0.3, 1.0).unwrap();
        sedov::init(&mut st, &SedovConfig::default());
        let blast = step(&mut st, &mut exec, &mut clock, &mut solo, 0.3, 1.0).unwrap();
        assert!(
            blast.dt < quiet.dt / 10.0,
            "blast dt {} vs quiet dt {}",
            blast.dt,
            quiet.dt
        );
    }

    #[test]
    fn run_advances_n_cycles() {
        let (mut st, mut exec, mut clock) = setup(8, Fidelity::Full);
        st.init_ambient(1.0, 0.4);
        let mut solo = SoloCoupler;
        run(&mut st, &mut exec, &mut clock, &mut solo, 0.4, 1.0, 4).unwrap();
        assert_eq!(st.cycle, 4);
    }

    #[test]
    fn energy_floor_keeps_pressure_positive_everywhere() {
        let (mut st, mut exec, mut clock) = setup(12, Fidelity::Full);
        sedov::init(
            &mut st,
            &SedovConfig {
                e0: 10.0,
                ..Default::default()
            },
        );
        let mut solo = SoloCoupler;
        for _ in 0..10 {
            step(&mut st, &mut exec, &mut clock, &mut solo, 0.25, 1.0).unwrap();
        }
        for k in 0..12 {
            for j in 0..12 {
                for i in 0..12 {
                    let r = st.u.get(RHO, i, j, k);
                    let e = st.u.get(EN, i, j, k);
                    assert!(r > 0.0, "negative density at ({i},{j},{k})");
                    assert!(e > 0.0, "negative energy at ({i},{j},{k})");
                    assert!(r.is_finite() && e.is_finite());
                }
            }
        }
        let _ = GAMMA;
    }
}
