//! Randomized workload generation.
//!
//! Beyond the paper's Sedov study, stress-testing the cooperative
//! runner needs initial conditions that are *not* symmetric or smooth:
//! random multi-scale density/pressure/velocity perturbations, seeded
//! and reproducible. The generator synthesizes a field from a handful
//! of random Fourier-ish modes (products of sines with random phases),
//! which is smooth enough to be stable yet has no exploitable
//! symmetry.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::state::{HydroState, EN, GAMMA, MX, MY, MZ, RHO};
use hsim_raja::Fidelity;

/// Parameters of the perturbed workload.
#[derive(Debug, Clone, PartialEq)]
pub struct PerturbedConfig {
    /// RNG seed (equal seeds ⇒ identical fields, regardless of
    /// decomposition).
    pub seed: u64,
    /// Mean density / pressure.
    pub rho0: f64,
    pub p0: f64,
    /// Relative perturbation amplitude (≲ 0.5 for positivity).
    pub amplitude: f64,
    /// Number of random modes per field.
    pub modes: usize,
    /// Peak random velocity (in units of the ambient sound speed).
    pub mach: f64,
}

impl Default for PerturbedConfig {
    fn default() -> Self {
        PerturbedConfig {
            seed: 0xA5E5,
            rho0: 1.0,
            p0: 0.6,
            amplitude: 0.3,
            modes: 6,
            mach: 0.3,
        }
    }
}

/// One random smooth scalar mode: `amp · sin(kx·x + φx) · sin(ky·y +
/// φy) · sin(kz·z + φz)`.
#[derive(Debug, Clone, Copy)]
struct Mode {
    amp: f64,
    k: [f64; 3],
    phase: [f64; 3],
}

impl Mode {
    fn sample(rng: &mut StdRng, amplitude: f64) -> Self {
        let mut k = [0.0; 3];
        let mut phase = [0.0; 3];
        for a in 0..3 {
            k[a] = rng.gen_range(1..=4) as f64 * std::f64::consts::TAU;
            phase[a] = rng.gen_range(0.0..std::f64::consts::TAU);
        }
        Mode {
            amp: rng.gen_range(-amplitude..amplitude),
            k,
            phase,
        }
    }

    fn eval(&self, x: f64, y: f64, z: f64) -> f64 {
        self.amp
            * (self.k[0] * x + self.phase[0]).sin()
            * (self.k[1] * y + self.phase[1]).sin()
            * (self.k[2] * z + self.phase[2]).sin()
    }
}

/// A reproducible random field: the sum of `modes` random modes,
/// clamped to keep `1 + field` positive.
#[derive(Debug, Clone)]
pub struct RandomField {
    modes: Vec<Mode>,
}

impl RandomField {
    fn new(rng: &mut StdRng, amplitude: f64, modes: usize) -> Self {
        let per_mode = amplitude / (modes as f64).sqrt();
        RandomField {
            modes: (0..modes).map(|_| Mode::sample(rng, per_mode)).collect(),
        }
    }

    /// Evaluate the relative perturbation at a physical point,
    /// clamped to (−0.9, 0.9).
    pub fn eval(&self, x: f64, y: f64, z: f64) -> f64 {
        self.modes
            .iter()
            .map(|m| m.eval(x, y, z))
            .sum::<f64>()
            .clamp(-0.9, 0.9)
    }
}

/// Initialize a perturbed gas. Deterministic per seed and independent
/// of the domain decomposition (fields are functions of physical
/// coordinates).
pub fn init(state: &mut HydroState, cfg: &PerturbedConfig) {
    state.t = 0.0;
    state.cycle = 0;
    if state.fidelity == Fidelity::CostOnly {
        return;
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let f_rho = RandomField::new(&mut rng, cfg.amplitude, cfg.modes);
    let f_p = RandomField::new(&mut rng, cfg.amplitude, cfg.modes);
    let f_v: Vec<RandomField> = (0..3)
        .map(|_| RandomField::new(&mut rng, 1.0, cfg.modes))
        .collect();
    let cs0 = (GAMMA * cfg.p0 / cfg.rho0).sqrt();
    let vmax = cfg.mach * cs0;

    let sub = state.sub;
    let grid = state.grid;
    for k in 0..sub.extent(2) {
        for j in 0..sub.extent(1) {
            for i in 0..sub.extent(0) {
                let (x, y, z) = grid.zone_center(i + sub.lo[0], j + sub.lo[1], k + sub.lo[2]);
                let rho = cfg.rho0 * (1.0 + f_rho.eval(x, y, z));
                let p = cfg.p0 * (1.0 + f_p.eval(x, y, z));
                let vel = [
                    vmax * f_v[0].eval(x, y, z),
                    vmax * f_v[1].eval(x, y, z),
                    vmax * f_v[2].eval(x, y, z),
                ];
                state.u.set(RHO, i, j, k, rho);
                state.u.set(MX, i, j, k, rho * vel[0]);
                state.u.set(MY, i, j, k, rho * vel[1]);
                state.u.set(MZ, i, j, k, rho * vel[2]);
                let ke = 0.5 * rho * (vel[0] * vel[0] + vel[1] * vel[1] + vel[2] * vel[2]);
                state.u.set(EN, i, j, k, p / (GAMMA - 1.0) + ke);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle::{step, SoloCoupler};
    use hsim_mesh::{GlobalGrid, Subdomain};
    use hsim_raja::{CpuModel, Executor, Target};
    use hsim_time::RankClock;

    fn state(n: usize) -> HydroState {
        let grid = GlobalGrid::new(n, n, n);
        let sub = Subdomain::new([0, 0, 0], [n, n, n], 1);
        HydroState::new(grid, sub, Fidelity::Full)
    }

    #[test]
    fn equal_seeds_give_identical_fields() {
        let mut a = state(12);
        let mut b = state(12);
        init(&mut a, &PerturbedConfig::default());
        init(&mut b, &PerturbedConfig::default());
        for (x, y) in a.u.var(RHO).iter().zip(b.u.var(RHO)) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = state(12);
        let mut b = state(12);
        init(&mut a, &PerturbedConfig::default());
        init(
            &mut b,
            &PerturbedConfig {
                seed: 999,
                ..Default::default()
            },
        );
        let same =
            a.u.var(RHO)
                .iter()
                .zip(b.u.var(RHO))
                .filter(|(x, y)| x == y)
                .count();
        // Ghosts are zero in both; owned values must differ broadly.
        assert!(same < a.u.var(RHO).len() / 2);
    }

    #[test]
    fn fields_are_positive_and_finite() {
        let mut st = state(16);
        init(
            &mut st,
            &PerturbedConfig {
                amplitude: 0.5,
                ..Default::default()
            },
        );
        for k in 0..16 {
            for j in 0..16 {
                for i in 0..16 {
                    let rho = st.u.get(RHO, i, j, k);
                    let en = st.u.get(EN, i, j, k);
                    assert!(rho > 0.0 && rho.is_finite());
                    assert!(en > 0.0 && en.is_finite());
                }
            }
        }
    }

    #[test]
    fn decomposition_independent_initialization() {
        // The same global zone gets the same value regardless of which
        // subdomain owns it.
        let grid = GlobalGrid::new(16, 16, 16);
        let mut whole = HydroState::new(
            grid,
            Subdomain::new([0, 0, 0], [16, 16, 16], 1),
            Fidelity::Full,
        );
        init(&mut whole, &PerturbedConfig::default());
        let mut part = HydroState::new(
            grid,
            Subdomain::new([8, 0, 0], [16, 16, 16], 1),
            Fidelity::Full,
        );
        init(&mut part, &PerturbedConfig::default());
        for k in 0..16 {
            for j in 0..16 {
                for i in 0..8 {
                    assert_eq!(
                        part.u.get(RHO, i, j, k).to_bits(),
                        whole.u.get(RHO, i + 8, j, k).to_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn random_workloads_run_stably() {
        // The stress test: several seeds, moderate amplitude, tens of
        // cycles — everything must stay finite and conserved.
        for seed in [1u64, 42, 77777] {
            let mut st = state(12);
            init(
                &mut st,
                &PerturbedConfig {
                    seed,
                    amplitude: 0.4,
                    mach: 0.5,
                    ..Default::default()
                },
            );
            let m0 = st.total_mass();
            let e0 = st.total_energy();
            let mut exec = Executor::new(Target::CpuSeq, CpuModel::haswell_fixed(), Fidelity::Full);
            let mut clock = RankClock::new(0);
            let mut solo = SoloCoupler;
            for _ in 0..25 {
                let stats = step(&mut st, &mut exec, &mut clock, &mut solo, 0.25, 1.0).unwrap();
                assert!(stats.dt.is_finite() && stats.dt > 0.0, "seed {seed}");
            }
            assert!(((st.total_mass() - m0) / m0).abs() < 1e-10, "seed {seed}");
            assert!(((st.total_energy() - e0) / e0).abs() < 1e-10, "seed {seed}");
            for v in st.u.var(RHO) {
                assert!(v.is_finite());
            }
        }
    }
}
