//! The kernel catalog: per-element cost descriptors for every kernel
//! the hydro cycle launches.
//!
//! The flop/byte counts are hand-counted from the kernel bodies (reads
//! and writes of f64 fields; arithmetic in the body). They drive both
//! the GPU roofline and the CPU cost model, so the CPU:GPU speed ratio
//! the load balancer sees comes from the same numbers the kernels
//! would really exhibit.

use hsim_gpu::KernelDesc;

/// Velocity primitives from conserved momentum: 3 divides, 4 fields.
pub const VELOCITY: KernelDesc = KernelDesc {
    name: "primitives_velocity",
    flops_per_elem: 6.0,
    bytes_per_elem: 56.0,
};

/// Pressure from conserved energy (gamma law): ~8 flops.
pub const PRESSURE: KernelDesc = KernelDesc {
    name: "primitives_pressure",
    flops_per_elem: 10.0,
    bytes_per_elem: 56.0,
};

/// Sound speed: sqrt + divide.
pub const SOUND_SPEED: KernelDesc = KernelDesc {
    name: "primitives_soundspeed",
    flops_per_elem: 8.0,
    bytes_per_elem: 24.0,
};

/// Per-face max wavespeed for Rusanov dissipation.
pub const WAVESPEED: KernelDesc = KernelDesc {
    name: "face_wavespeed",
    flops_per_elem: 8.0,
    bytes_per_elem: 40.0,
};

/// One conserved variable's Rusanov face flux.
pub const FLUX: KernelDesc = KernelDesc {
    name: "face_flux",
    flops_per_elem: 14.0,
    bytes_per_elem: 64.0,
};

/// Flux-difference update of one conserved variable.
pub const UPDATE: KernelDesc = KernelDesc {
    name: "flux_update",
    flops_per_elem: 5.0,
    bytes_per_elem: 40.0,
};

/// Heun combine: U = (U0 + U*)/2.
pub const COMBINE: KernelDesc = KernelDesc {
    name: "rk_combine",
    flops_per_elem: 3.0,
    bytes_per_elem: 24.0,
};

/// Reflecting boundary fill for one field (touches faces only; cost
/// charged per touched element).
pub const BOUNDARY: KernelDesc = KernelDesc {
    name: "boundary_fill",
    flops_per_elem: 2.0,
    bytes_per_elem: 16.0,
};

/// Per-zone CFL bound (the min-reduction kernel).
pub const CFL: KernelDesc = KernelDesc {
    name: "cfl_minreduce",
    flops_per_elem: 12.0,
    bytes_per_elem: 40.0,
};

/// Snapshot copy of the conserved state (RK stage 0).
pub const SAVE_STATE: KernelDesc = KernelDesc {
    name: "save_state",
    flops_per_elem: 0.0,
    bytes_per_elem: 16.0,
};

/// Internal-energy extraction for the diffusion package.
pub const DIFF_EINT: KernelDesc = KernelDesc {
    name: "diffusion_internal_energy",
    flops_per_elem: 9.0,
    bytes_per_elem: 48.0,
};

/// Diffusive face flux of internal energy.
pub const DIFF_FLUX: KernelDesc = KernelDesc {
    name: "diffusion_face_flux",
    flops_per_elem: 4.0,
    bytes_per_elem: 24.0,
};

/// Diffusive flux-difference update.
pub const DIFF_UPDATE: KernelDesc = KernelDesc {
    name: "diffusion_update",
    flops_per_elem: 4.0,
    bytes_per_elem: 32.0,
};

/// MUSCL minmod reconstruction of one variable's face states.
pub const MUSCL_RECON: KernelDesc = KernelDesc {
    name: "muscl_reconstruct",
    flops_per_elem: 10.0,
    bytes_per_elem: 48.0,
};

/// Face-primitive recovery from reconstructed states.
pub const FACE_PRIMS: KernelDesc = KernelDesc {
    name: "face_primitives",
    flops_per_elem: 30.0,
    bytes_per_elem: 120.0,
};

/// All catalog entries (for reports and the workload generator).
pub const CATALOG: [&KernelDesc; 15] = [
    &VELOCITY,
    &PRESSURE,
    &SOUND_SPEED,
    &WAVESPEED,
    &FLUX,
    &UPDATE,
    &COMBINE,
    &BOUNDARY,
    &CFL,
    &SAVE_STATE,
    &DIFF_EINT,
    &DIFF_FLUX,
    &DIFF_UPDATE,
    &MUSCL_RECON,
    &FACE_PRIMS,
];

/// Kernel launches issued per cycle for bookkeeping claims: see
/// `cycle::LAUNCHES_PER_CYCLE_APPROX`.
pub fn catalog_names() -> Vec<&'static str> {
    CATALOG.iter().map(|d| d.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names_are_unique() {
        let mut names = catalog_names();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), CATALOG.len());
    }

    #[test]
    fn descriptors_have_positive_traffic() {
        for d in CATALOG {
            assert!(d.bytes_per_elem > 0.0, "{} moves no bytes", d.name);
            assert!(d.flops_per_elem >= 0.0);
        }
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn flux_kernels_are_the_heaviest_per_element() {
        assert!(FLUX.bytes_per_elem >= UPDATE.bytes_per_elem);
        assert!(FLUX.flops_per_elem > COMBINE.flops_per_elem);
    }
}
