//! The Taylor–Green vortex: a smooth periodic-like vortex array whose
//! kinetic-energy decay measures numerical dissipation.
//!
//! Velocity `u = v0·sin(kx)·cos(ky)`, `v = −v0·cos(kx)·sin(ky)`,
//! `w = 0` with `k = 2π/L`, and the matching incompressible pressure
//! field `p = p0 + ρ0·v0²/4·(cos 2kx + cos 2ky)`. The box walls are
//! symmetry planes of this field (the normal velocity vanishes on
//! every face), so the reflecting rigid-wall boundaries are *exact* —
//! no boundary-condition changes are needed.
//!
//! In the incompressible inviscid limit the vortex is steady; a
//! finite-volume scheme decays its kinetic energy at a rate set purely
//! by the scheme's numerical dissipation. `1 − KE(t)/KE(0)` is
//! therefore a deterministic, machine-independent quality metric: it
//! exercises the smooth-flow regime (no shocks anywhere) that Sedov,
//! Sod, and Noh never touch.

use crate::state::{HydroState, EN, GAMMA, MX, MY, MZ, RHO};
use hsim_raja::Fidelity;

/// The Taylor–Green setup (x–y vortex array, uniform in z).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaylorGreenConfig {
    /// Background density.
    pub rho0: f64,
    /// Vortex speed amplitude.
    pub v0: f64,
    /// Mach number of `v0` against the background sound speed; sets
    /// the background pressure `p0 = ρ0·(v0/mach)²/γ`. Small values
    /// keep the flow nearly incompressible.
    pub mach: f64,
}

impl Default for TaylorGreenConfig {
    fn default() -> Self {
        TaylorGreenConfig {
            rho0: 1.0,
            v0: 1.0,
            mach: 0.1,
        }
    }
}

impl TaylorGreenConfig {
    /// Background pressure implied by the Mach number.
    pub fn p0(&self) -> f64 {
        let c = self.v0 / self.mach;
        self.rho0 * c * c / GAMMA
    }
}

/// Initialize the vortex array.
pub fn init(state: &mut HydroState, cfg: &TaylorGreenConfig) {
    state.t = 0.0;
    state.cycle = 0;
    if state.fidelity == Fidelity::CostOnly {
        return;
    }
    let sub = state.sub;
    let grid = state.grid;
    let p0 = cfg.p0();
    let kx = 2.0 * std::f64::consts::PI / grid.lx;
    let ky = 2.0 * std::f64::consts::PI / grid.ly;
    for k in 0..sub.extent(2) {
        for j in 0..sub.extent(1) {
            for i in 0..sub.extent(0) {
                let (x, y, _) = grid.zone_center(i + sub.lo[0], j + sub.lo[1], k + sub.lo[2]);
                let u = cfg.v0 * (kx * x).sin() * (ky * y).cos();
                let v = -cfg.v0 * (kx * x).cos() * (ky * y).sin();
                let p = p0
                    + cfg.rho0 * cfg.v0 * cfg.v0 / 4.0
                        * ((2.0 * kx * x).cos() + (2.0 * ky * y).cos());
                state.u.set(RHO, i, j, k, cfg.rho0);
                state.u.set(MX, i, j, k, cfg.rho0 * u);
                state.u.set(MY, i, j, k, cfg.rho0 * v);
                state.u.set(MZ, i, j, k, 0.0);
                let e = p / (GAMMA - 1.0) + 0.5 * cfg.rho0 * (u * u + v * v);
                state.u.set(EN, i, j, k, e);
            }
        }
    }
    for var in 0..crate::state::NCONS {
        for axis in 0..3 {
            state
                .u
                .reflect_into_ghost(var, axis, hsim_mesh::Side::Low, 1.0);
            state
                .u
                .reflect_into_ghost(var, axis, hsim_mesh::Side::High, 1.0);
        }
    }
}

/// Total kinetic energy `Σ ½·|m|²/ρ · V` over the owned zones.
pub fn kinetic_energy(state: &HydroState) -> f64 {
    let e = state.ext();
    let h = state.dx();
    let vol = h * h * h;
    let mut ke = 0.0;
    for k in 0..e[2] {
        for j in 0..e[1] {
            for i in 0..e[0] {
                let rho = state.u.get(RHO, i, j, k);
                let mx = state.u.get(MX, i, j, k);
                let my = state.u.get(MY, i, j, k);
                let mz = state.u.get(MZ, i, j, k);
                ke += 0.5 * (mx * mx + my * my + mz * mz) / rho.max(1e-300);
            }
        }
    }
    ke * vol
}

/// Analytic initial kinetic energy: `ρ0·v0²·V/4`.
pub fn analytic_ke0(cfg: &TaylorGreenConfig, lx: f64, ly: f64, lz: f64) -> f64 {
    0.25 * cfg.rho0 * cfg.v0 * cfg.v0 * lx * ly * lz
}

/// The dissipation metric: fraction of the initial kinetic energy lost
/// by time `t` (0 = no numerical dissipation).
pub fn ke_decay(cfg: &TaylorGreenConfig, ke_now: f64, lx: f64, ly: f64, lz: f64) -> f64 {
    let ke0 = analytic_ke0(cfg, lx, ly, lz);
    if ke0 <= 0.0 {
        return 0.0;
    }
    1.0 - ke_now / ke0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle::{step, SoloCoupler};
    use hsim_mesh::{GlobalGrid, Subdomain};
    use hsim_raja::{CpuModel, Executor, Target};
    use hsim_time::RankClock;

    fn solo(n: usize) -> (HydroState, Executor, RankClock) {
        let grid = GlobalGrid::new(n, n, 4);
        let sub = Subdomain::new([0, 0, 0], [n, n, 4], 1);
        let st = HydroState::new(grid, sub, Fidelity::Full);
        let exec = Executor::new(Target::CpuSeq, CpuModel::haswell_fixed(), Fidelity::Full);
        (st, exec, RankClock::new(0))
    }

    #[test]
    fn initial_kinetic_energy_matches_the_analytic_value() {
        let (mut st, _, _) = solo(64);
        let cfg = TaylorGreenConfig::default();
        init(&mut st, &cfg);
        let ke = kinetic_energy(&st);
        let ke0 = analytic_ke0(&cfg, st.grid.lx, st.grid.ly, st.grid.lz);
        // Midpoint sampling of sin²/cos² on a uniform grid is exact up
        // to discrete-sum corrections that vanish at even counts.
        assert!(
            ((ke - ke0) / ke0).abs() < 1e-3,
            "discrete KE {ke} vs analytic {ke0}"
        );
        assert!((ke_decay(&cfg, ke0, st.grid.lx, st.grid.ly, st.grid.lz)).abs() < 1e-12);
    }

    #[test]
    fn cost_only_init_is_a_noop() {
        let grid = GlobalGrid::new(64, 64, 64);
        let sub = Subdomain::new([0, 0, 0], [64, 64, 64], 1);
        let mut st = HydroState::new(grid, sub, Fidelity::CostOnly);
        init(&mut st, &TaylorGreenConfig::default());
        assert!(st.u.var(RHO).len() < 64);
    }

    #[test]
    fn vortex_decays_monotonically_and_slowly() {
        let (mut st, mut exec, mut clock) = solo(32);
        let cfg = TaylorGreenConfig::default();
        init(&mut st, &cfg);
        let m0 = st.total_mass();
        let mut solo = SoloCoupler;
        let mut last = kinetic_energy(&st);
        let ke0 = last;
        for _ in 0..10 {
            step(&mut st, &mut exec, &mut clock, &mut solo, 0.3, 1.0).unwrap();
            let ke = kinetic_energy(&st);
            // Numerical dissipation only ever removes kinetic energy
            // from this smooth steady flow (tiny acoustic exchange is
            // orders below the dissipation scale).
            assert!(ke < last * (1.0 + 1e-10), "KE rose: {last} -> {ke}");
            last = ke;
        }
        assert!(((st.total_mass() - m0) / m0).abs() < 1e-10);
        let decay = 1.0 - last / ke0;
        assert!(decay > 0.0, "no dissipation measured");
        assert!(decay < 0.5, "first-order dissipation blew up: {decay}");
    }
}
