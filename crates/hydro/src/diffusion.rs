//! Thermal diffusion: the second physics package.
//!
//! ARES is a *multi*-physics code — the paper lists diffusion among
//! its packages (§3) — so the proxy app carries one too: explicit
//! operator-split diffusion of internal energy,
//!
//! ```text
//! ∂e/∂t = ∇·(κ ∇e),        e = E − ½ρ|v|²  (internal energy density)
//! ```
//!
//! discretized with the same fine-grained kernel structure as the
//! hydro package (per-axis face fluxes + updates), sharing the mesh,
//! the halo exchange, and the portability layer. Explicit stability
//! requires `dt ≤ dx²/(6κ)` in 3D; [`diffusion_dt`] reports the bound
//! and [`diffuse_step`] substeps internally when asked to advance
//! further.

use hsim_gpu::GpuError;
use hsim_raja::{Executor, Fidelity};
use hsim_time::RankClock;

use crate::cycle::{Coupler, CycleError};
use crate::eos::indexer;
use crate::kernels;
use crate::state::{HydroState, EN, MX, MY, MZ, PR, RHO, RHO_FLOOR};

/// Diffusion package parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffusionConfig {
    /// Diffusivity κ (zone-width² per unit time scale).
    pub kappa: f64,
}

impl Default for DiffusionConfig {
    fn default() -> Self {
        DiffusionConfig { kappa: 1e-3 }
    }
}

/// The largest stable explicit timestep for diffusivity `kappa` on
/// this state's grid: `dx² / (6κ)` (3D von Neumann bound).
pub fn diffusion_dt(state: &HydroState, kappa: f64) -> f64 {
    if kappa <= 0.0 {
        return f64::INFINITY;
    }
    let h = state.dx();
    h * h / (6.0 * kappa)
}

/// Extract internal energy density `e = E − ½ρ|v|²` into the pressure
/// scratch field (overwritten by the next hydro stage anyway), over
/// the allocated region so face fluxes can reach the ghosts.
fn internal_energy(
    st: &mut HydroState,
    exec: &mut Executor,
    clock: &mut RankClock,
) -> Result<(), GpuError> {
    let ext = st.ext_all();
    let dims = st.u.dims();
    let at = indexer(dims);
    let (u, prim) = (&st.u, &mut st.prim);
    let rho = u.var(RHO);
    let mx = u.var(MX);
    let my = u.var(MY);
    let mz = u.var(MZ);
    let en = u.var(EN);
    let eint = prim.var_mut(PR);
    let at = &at;
    exec.forall3(clock, &kernels::DIFF_EINT, ext, |i, j, k| {
        let idx = at(i, j, k);
        let r = rho[idx].max(RHO_FLOOR);
        let ke = 0.5 * (mx[idx] * mx[idx] + my[idx] * my[idx] + mz[idx] * mz[idx]) / r;
        eint[idx] = en[idx] - ke;
    })
}

/// One explicit diffusion substep of size `dt` (assumed stable).
fn substep(
    st: &mut HydroState,
    exec: &mut Executor,
    clock: &mut RankClock,
    kappa: f64,
    dt: f64,
) -> Result<(), GpuError> {
    internal_energy(st, exec, clock)?;
    let h = st.dx();
    let g = st.sub.ghost;
    let dims = st.u.dims();
    let at = indexer(dims);
    for axis in 0..3 {
        let fd = st.face_dims(axis);
        let fat = indexer(fd);
        // Face flux: F = −κ (e_R − e_L)/h.
        {
            let (prim, fx) = (&st.prim, &mut st.flux);
            let eint = prim.var(PR);
            let fx = &mut fx[..];
            let at = &at;
            let fat = &fat;
            let scale = kappa / h;
            exec.forall3(clock, &kernels::DIFF_FLUX, fd, move |i, j, k| {
                let mut l = [i, j, k];
                let mut r = [i, j, k];
                for (a, (lv, rv)) in l.iter_mut().zip(r.iter_mut()).enumerate() {
                    if a != axis {
                        *lv += g;
                        *rv += g;
                    } else {
                        *rv += 1;
                    }
                }
                let el = eint[at(l[0], l[1], l[2])];
                let er = eint[at(r[0], r[1], r[2])];
                fx[fat(i, j, k)] = -scale * (er - el);
            })?;
        }
        // Update: E -= dt/h (F_hi − F_lo), applied directly to the
        // conserved energy (diffusion only moves internal energy).
        {
            let ext = st.ext();
            let (u, fx) = (&mut st.u, &st.flux);
            let en = u.var_mut(EN);
            let fx = &fx[..];
            let at = &at;
            let fat = &fat;
            let scale = dt / h;
            exec.forall3(clock, &kernels::DIFF_UPDATE, ext, move |i, j, k| {
                let mut hi = [i, j, k];
                hi[axis] += 1;
                let f_lo = fx[fat(i, j, k)];
                let f_hi = fx[fat(hi[0], hi[1], hi[2])];
                en[at(i + g, j + g, k + g)] -= scale * (f_hi - f_lo);
            })?;
        }
    }
    Ok(())
}

/// Advance diffusion by `dt_total`, substepping at the stability bound
/// if needed. Ghosts are refreshed through `coupler`/boundary fill
/// before each substep. Returns the number of substeps taken.
pub fn diffuse_step<C: Coupler>(
    st: &mut HydroState,
    exec: &mut Executor,
    clock: &mut RankClock,
    coupler: &mut C,
    cfg: &DiffusionConfig,
    dt_total: f64,
) -> Result<u32, CycleError> {
    if cfg.kappa <= 0.0 || dt_total <= 0.0 {
        return Ok(0);
    }
    let dt_max = diffusion_dt(st, cfg.kappa);
    let n = (dt_total / dt_max).ceil().max(1.0) as u32;
    // Cost-only sweeps cap substeps: the per-cycle package cost is
    // what matters, not resolving a fictitious fallback dt.
    let n = if st.fidelity == Fidelity::CostOnly {
        1
    } else {
        n
    };
    let dt = dt_total / n as f64;
    for _ in 0..n {
        crate::bc::apply(st, exec, clock)?;
        coupler.exchange(st, clock)?;
        substep(st, exec, clock, cfg.kappa, dt)?;
    }
    exec.sync(clock);
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle::SoloCoupler;
    use crate::state::GAMMA;
    use hsim_mesh::{GlobalGrid, Subdomain};
    use hsim_raja::{CpuModel, Target};

    fn setup(n: usize) -> (HydroState, Executor, RankClock) {
        let grid = GlobalGrid::new(n, n, n);
        let sub = Subdomain::new([0, 0, 0], [n, n, n], 1);
        let mut st = HydroState::new(grid, sub, Fidelity::Full);
        st.init_ambient(1.0, 0.4);
        let exec = Executor::new(Target::CpuSeq, CpuModel::haswell_fixed(), Fidelity::Full);
        (st, exec, RankClock::new(0))
    }

    /// Second moment of the energy perturbation about the box center
    /// along x, normalized by the total perturbation.
    fn second_moment_x(st: &HydroState, background: f64) -> f64 {
        let n = st.ext()[0];
        let h = st.dx();
        let cx = st.grid.lx / 2.0;
        let mut m0 = 0.0;
        let mut m2 = 0.0;
        for k in 0..n {
            for j in 0..n {
                for i in 0..n {
                    let de = st.u.get(EN, i, j, k) - background;
                    let x = (i as f64 + 0.5) * h - cx;
                    m0 += de;
                    m2 += de * x * x;
                }
            }
        }
        m2 / m0
    }

    #[test]
    fn stability_bound_scales_with_resolution_and_kappa() {
        let (st, _, _) = setup(16);
        let d1 = diffusion_dt(&st, 1e-3);
        let d2 = diffusion_dt(&st, 2e-3);
        assert!((d1 / d2 - 2.0).abs() < 1e-12);
        assert_eq!(diffusion_dt(&st, 0.0), f64::INFINITY);
    }

    #[test]
    fn uniform_energy_is_a_fixed_point() {
        let (mut st, mut exec, mut clock) = setup(10);
        let e0 = st.total_energy();
        let mut solo = SoloCoupler;
        diffuse_step(
            &mut st,
            &mut exec,
            &mut clock,
            &mut solo,
            &DiffusionConfig::default(),
            0.05,
        )
        .unwrap();
        assert!(((st.total_energy() - e0) / e0).abs() < 1e-12);
        let v = st.u.get(EN, 3, 3, 3);
        assert!((v - 0.4 / (GAMMA - 1.0)).abs() < 1e-12);
    }

    #[test]
    fn hot_spot_spreads_and_conserves_energy() {
        let (mut st, mut exec, mut clock) = setup(16);
        let background = 0.4 / (GAMMA - 1.0);
        // A hot zone at the center.
        st.u.set(EN, 8, 8, 8, background + 10.0);
        let e0 = st.total_energy();
        let peak0 = st.u.get(EN, 8, 8, 8);
        let mut solo = SoloCoupler;
        let steps = diffuse_step(
            &mut st,
            &mut exec,
            &mut clock,
            &mut solo,
            &DiffusionConfig { kappa: 2e-3 },
            0.2,
        )
        .unwrap();
        assert!(steps >= 1);
        let peak1 = st.u.get(EN, 8, 8, 8);
        assert!(peak1 < peak0, "peak must decay: {peak0} → {peak1}");
        // Neighbors warmed up.
        assert!(st.u.get(EN, 7, 8, 8) > background + 1e-6);
        // Total energy conserved (zero-flux walls).
        assert!(((st.total_energy() - e0) / e0).abs() < 1e-10);
    }

    #[test]
    fn variance_grows_at_two_kappa_t() {
        // Linear diffusion of a point-ish perturbation: the second
        // moment grows as σ²(t) = σ²(0) + 2κt per axis.
        let (mut st, mut exec, mut clock) = setup(24);
        let background = 0.4 / (GAMMA - 1.0);
        st.u.set(EN, 12, 12, 12, background + 50.0);
        let kappa = 1.5e-3;
        let mut solo = SoloCoupler;
        let s0 = second_moment_x(&st, background);
        let t_total = 0.6;
        diffuse_step(
            &mut st,
            &mut exec,
            &mut clock,
            &mut solo,
            &DiffusionConfig { kappa },
            t_total,
        )
        .unwrap();
        let s1 = second_moment_x(&st, background);
        let growth = s1 - s0;
        let expect = 2.0 * kappa * t_total;
        let rel = (growth - expect).abs() / expect;
        assert!(
            rel < 0.08,
            "variance growth {growth:.3e} vs 2κt {expect:.3e} (rel {rel:.3})"
        );
    }

    #[test]
    fn diffusion_launch_count_is_small_and_fixed() {
        let (mut st, mut exec, mut clock) = setup(8);
        let mut solo = SoloCoupler;
        exec.registry.clear();
        let dt_stable = diffusion_dt(&st, 1e-3);
        diffuse_step(
            &mut st,
            &mut exec,
            &mut clock,
            &mut solo,
            &DiffusionConfig { kappa: 1e-3 },
            dt_stable * 0.5,
        )
        .unwrap();
        // One substep: 30 bc + 1 e_int + 3×(flux + update) = 37.
        assert_eq!(exec.registry.total_launches(), 37);
    }

    #[test]
    fn cost_only_diffusion_charges_time() {
        let grid = GlobalGrid::new(32, 32, 32);
        let sub = Subdomain::new([0, 0, 0], [32, 32, 32], 1);
        let mut st = HydroState::new(grid, sub, Fidelity::CostOnly);
        let mut exec = Executor::new(
            Target::CpuSeq,
            CpuModel::haswell_fixed(),
            Fidelity::CostOnly,
        );
        let mut clock = RankClock::new(0);
        let mut solo = SoloCoupler;
        let steps = diffuse_step(
            &mut st,
            &mut exec,
            &mut clock,
            &mut solo,
            &DiffusionConfig::default(),
            1.0,
        )
        .unwrap();
        assert_eq!(steps, 1, "cost-only runs one representative substep");
        assert!(clock.now().as_nanos() > 0);
    }
}
