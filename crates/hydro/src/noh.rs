//! The Noh implosion (planar variant): colliding cold streams with an
//! exact strong-shock solution.
//!
//! Two uniform streams of cold gas (pressure ~ 0) drive toward the
//! midplane at speed `u0`. Two infinite-strength shocks form at the
//! collision plane and propagate outward at the constant speed
//! `D = u0·(γ−1)/2`; between them the gas is at rest with the exact
//! strong-shock compression `ρ = ρ0·(γ+1)/(γ−1)` and stagnation
//! pressure `p = ρ0·u0²·(γ+1)/2` (Rankine–Hugoniot in the wall frame).
//! For γ = 1.4 and `u0 = 1` that is `D = 0.2`, `ρ = 6`, `p = 1.2` — a
//! pointwise analytic reference like the Sod tube, but one that
//! exercises the scheme in the *infinite-Mach* regime where pressure
//! floors and the Rusanov dissipation do real work.

use crate::state::{HydroState, EN, GAMMA, MX, MY, MZ, RHO};
use hsim_raja::Fidelity;

/// The planar Noh setup along x (uniform in y, z).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NohConfig {
    /// Upstream density.
    pub rho0: f64,
    /// Upstream pressure (near-vacuum; exactly zero would divide the
    /// sound speed away).
    pub p0: f64,
    /// Inflow speed of each stream toward the midplane.
    pub u0: f64,
}

impl Default for NohConfig {
    fn default() -> Self {
        NohConfig {
            rho0: 1.0,
            p0: 1e-6,
            u0: 1.0,
        }
    }
}

/// Initialize the colliding streams (midplane at x = lx/2).
pub fn init(state: &mut HydroState, cfg: &NohConfig) {
    state.t = 0.0;
    state.cycle = 0;
    if state.fidelity == Fidelity::CostOnly {
        return;
    }
    let sub = state.sub;
    let grid = state.grid;
    let x_mid = 0.5 * grid.lx;
    for k in 0..sub.extent(2) {
        for j in 0..sub.extent(1) {
            for i in 0..sub.extent(0) {
                let (x, _, _) = grid.zone_center(i + sub.lo[0], j + sub.lo[1], k + sub.lo[2]);
                let u = if x < x_mid { cfg.u0 } else { -cfg.u0 };
                state.u.set(RHO, i, j, k, cfg.rho0);
                state.u.set(MX, i, j, k, cfg.rho0 * u);
                state.u.set(MY, i, j, k, 0.0);
                state.u.set(MZ, i, j, k, 0.0);
                let e = cfg.p0 / (GAMMA - 1.0) + 0.5 * cfg.rho0 * u * u;
                state.u.set(EN, i, j, k, e);
            }
        }
    }
    for var in 0..crate::state::NCONS {
        for axis in 0..3 {
            state
                .u
                .reflect_into_ghost(var, axis, hsim_mesh::Side::Low, 1.0);
            state
                .u
                .reflect_into_ghost(var, axis, hsim_mesh::Side::High, 1.0);
        }
    }
}

/// Outward shock speed `D = u0·(γ−1)/2`.
pub fn shock_speed(cfg: &NohConfig) -> f64 {
    cfg.u0 * (GAMMA - 1.0) / 2.0
}

/// Exact solution at signed midplane offset `s = x − lx/2` and time
/// `t`: `(rho, u, p)` with `u` the x velocity.
pub fn exact_solution(cfg: &NohConfig, s: f64, t: f64) -> (f64, f64, f64) {
    let d = shock_speed(cfg) * t.max(0.0);
    if s.abs() < d {
        // Stagnation region between the two shocks.
        let rho = cfg.rho0 * (GAMMA + 1.0) / (GAMMA - 1.0);
        let p = cfg.rho0 * cfg.u0 * cfg.u0 * (GAMMA + 1.0) / 2.0;
        (rho, 0.0, p)
    } else {
        // Undisturbed inflow.
        let u = if s < 0.0 { cfg.u0 } else { -cfg.u0 };
        (cfg.rho0, u, cfg.p0)
    }
}

/// L1 density error of the axial profile against the exact solution,
/// restricted to the window `|x − lx/2| ≤ window · lx` (the outer
/// region is polluted by the reflecting-wall startup, which travels
/// inward at finite speed and never reaches the window for short
/// runs).
pub fn windowed_l1_error(cfg: &NohConfig, axial_rho: &[f64], lx: f64, t: f64, window: f64) -> f64 {
    let n = axial_rho.len();
    if n == 0 {
        return 0.0;
    }
    let dx = lx / n as f64;
    let x_mid = 0.5 * lx;
    let mut err = 0.0;
    let mut count = 0u64;
    for (i, rho) in axial_rho.iter().enumerate() {
        let x = (i as f64 + 0.5) * dx;
        let s = x - x_mid;
        if s.abs() > window * lx {
            continue;
        }
        let (exact, _, _) = exact_solution(cfg, s, t);
        err += (rho - exact).abs();
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        err / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle::{step, SoloCoupler};
    use crate::sod::axial_density;
    use hsim_mesh::{GlobalGrid, Subdomain};
    use hsim_raja::{CpuModel, Executor, Target};
    use hsim_time::RankClock;

    #[test]
    fn exact_solution_is_the_strong_shock_state() {
        let cfg = NohConfig::default();
        assert!((shock_speed(&cfg) - 0.2).abs() < 1e-15);
        let (rho, u, p) = exact_solution(&cfg, 0.0, 1.0);
        assert!((rho - 6.0).abs() < 1e-12);
        assert_eq!(u, 0.0);
        assert!((p - 1.2).abs() < 1e-12);
        // Outside the shock: undisturbed inflow.
        let (rho, u, p) = exact_solution(&cfg, 0.5, 1.0);
        assert_eq!(rho, cfg.rho0);
        assert_eq!(u, -cfg.u0);
        assert_eq!(p, cfg.p0);
        let (_, u, _) = exact_solution(&cfg, -0.5, 1.0);
        assert_eq!(u, cfg.u0);
    }

    #[test]
    fn cost_only_init_is_a_noop() {
        let grid = GlobalGrid::new(64, 64, 64);
        let sub = Subdomain::new([0, 0, 0], [64, 64, 64], 1);
        let mut st = HydroState::new(grid, sub, Fidelity::CostOnly);
        init(&mut st, &NohConfig::default());
        assert!(st.u.var(RHO).len() < 64);
        assert_eq!(st.t, 0.0);
    }

    #[test]
    fn simulated_implosion_matches_exact_solution_in_the_window() {
        let n = 128;
        let grid = GlobalGrid::new(n, 4, 4);
        let sub = Subdomain::new([0, 0, 0], [n, 4, 4], 1);
        let mut st = HydroState::new(grid, sub, Fidelity::Full);
        let cfg = NohConfig::default();
        init(&mut st, &cfg);
        let m0 = st.total_mass();
        let mut exec = Executor::new(Target::CpuSeq, CpuModel::haswell_fixed(), Fidelity::Full);
        let mut clock = RankClock::new(0);
        let mut solo = SoloCoupler;
        let t_end = 0.2;
        let mut guard = 0;
        while st.t < t_end {
            step(&mut st, &mut exec, &mut clock, &mut solo, 0.3, 1.0).unwrap();
            guard += 1;
            assert!(guard < 5000);
        }
        // Reflecting walls: nothing leaves the box.
        assert!(((st.total_mass() - m0) / m0).abs() < 1e-10);
        let sim = axial_density(&st);
        // Peak compression approaches the exact 6x (first-order
        // smearing keeps it below; far above 4 means the shock formed).
        let peak = sim.iter().cloned().fold(0.0, f64::max);
        assert!(peak > 4.0, "peak compression {peak}");
        let l1 = windowed_l1_error(&cfg, &sim, grid.lx, st.t, 0.2);
        // First-order scheme at 128 zones: the smeared shock front
        // dominates; ~1 zone of 5x jump spread over the 0.4·lx window.
        assert!(l1 < 0.8, "windowed L1 error {l1}");
        // The stagnation region is symmetric about the midplane.
        for i in 0..n / 2 {
            let a = sim[i];
            let b = sim[n - 1 - i];
            assert!((a - b).abs() < 1e-9, "asymmetry at {i}: {a} vs {b}");
        }
    }
}
