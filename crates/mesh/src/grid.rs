//! The global structured grid.

/// A global 3D grid of `nx × ny × nz` zones (cells). Node counts are
/// one larger in each dimension. Zone (i, j, k) spans
/// `[i·dx, (i+1)·dx] × …` of the physical box.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GlobalGrid {
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
    /// Physical box extents (used by the hydro problem setup).
    pub lx: f64,
    pub ly: f64,
    pub lz: f64,
}

impl GlobalGrid {
    /// A grid of `nx × ny × nz` zones over a unit-ish box with cubic
    /// zones (`dx = dy = dz = 1/max_dim`).
    pub fn new(nx: usize, ny: usize, nz: usize) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0, "grid dims must be positive");
        let h = 1.0 / nx.max(ny).max(nz) as f64;
        GlobalGrid {
            nx,
            ny,
            nz,
            lx: h * nx as f64,
            ly: h * ny as f64,
            lz: h * nz as f64,
        }
    }

    /// Total zone count.
    pub fn zones(&self) -> u64 {
        self.nx as u64 * self.ny as u64 * self.nz as u64
    }

    /// Total node count.
    pub fn nodes(&self) -> u64 {
        (self.nx as u64 + 1) * (self.ny as u64 + 1) * (self.nz as u64 + 1)
    }

    /// Zone widths (dx, dy, dz).
    pub fn spacing(&self) -> (f64, f64, f64) {
        (
            self.lx / self.nx as f64,
            self.ly / self.ny as f64,
            self.lz / self.nz as f64,
        )
    }

    /// The zone containing physical point (x, y, z), clamped to the
    /// grid.
    pub fn zone_at(&self, x: f64, y: f64, z: f64) -> (usize, usize, usize) {
        let (dx, dy, dz) = self.spacing();
        let clamp = |v: f64, n: usize| ((v / 1.0).max(0.0) as usize).min(n - 1);
        (
            clamp(x / dx, self.nx),
            clamp(y / dy, self.ny),
            clamp(z / dz, self.nz),
        )
    }

    /// Center coordinates of zone (i, j, k).
    pub fn zone_center(&self, i: usize, j: usize, k: usize) -> (f64, f64, f64) {
        let (dx, dy, dz) = self.spacing();
        (
            (i as f64 + 0.5) * dx,
            (j as f64 + 0.5) * dy,
            (k as f64 + 0.5) * dz,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_are_products() {
        let g = GlobalGrid::new(320, 240, 160);
        assert_eq!(g.zones(), 320 * 240 * 160);
        assert_eq!(g.nodes(), 321 * 241 * 161);
    }

    #[test]
    fn zones_are_cubic() {
        let g = GlobalGrid::new(320, 240, 160);
        let (dx, dy, dz) = g.spacing();
        assert!((dx - dy).abs() < 1e-15 && (dy - dz).abs() < 1e-15);
        assert!((g.lx - 1.0).abs() < 1e-12, "longest axis spans 1.0");
    }

    #[test]
    fn zone_center_is_inside_the_zone() {
        let g = GlobalGrid::new(10, 10, 10);
        let (x, y, z) = g.zone_center(0, 0, 0);
        let (dx, _, _) = g.spacing();
        assert!((x - dx / 2.0).abs() < 1e-15);
        assert!(y > 0.0 && z > 0.0);
    }

    #[test]
    fn zone_at_clamps_to_grid() {
        let g = GlobalGrid::new(10, 10, 10);
        assert_eq!(g.zone_at(-5.0, 0.0, 0.0).0, 0);
        assert_eq!(g.zone_at(99.0, 0.05, 0.05), (9, 0, 0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dim_rejected() {
        let _ = GlobalGrid::new(0, 4, 4);
    }
}
