//! The paper's hierarchical decomposition (Figure 10b).
//!
//! "The first step ... is to divide the work into the number of GPUs
//! available ... Then, for the approaches utilizing more than one MPI
//! process per GPU, we further divided the domain into smaller domains
//! ... we subdivided the work on a GPU in a single dimension ... The
//! subdivision in a single dimension kept the number of neighbors
//! communicating in the halo exchange minimal." (§6.1.)

use crate::decomp::block::{block_decomp, block_decomp_yz};
use crate::decomp::{Decomposition, OwnerKind};
use crate::grid::GlobalGrid;

/// Two-level decomposition: `n_gpus` near-cubic blocks, each split into
/// `per_gpu` pieces along `split_axis` (the paper keeps the x-dimension
/// intact and cuts along one of the others — Figure 10 keeps "the size
/// of the x-dimension the same for all approaches").
///
/// Rank order is GPU-major: ranks `g*per_gpu .. (g+1)*per_gpu` share
/// GPU `g`, which is exactly how MPS clients are grouped on a device.
pub fn hierarchical_decomp(
    grid: GlobalGrid,
    n_gpus: usize,
    per_gpu: usize,
    split_axis: usize,
    ghost: usize,
) -> Result<Decomposition, String> {
    hierarchical_with_top(
        grid,
        block_decomp(grid, n_gpus, ghost),
        n_gpus,
        per_gpu,
        split_axis,
    )
}

/// [`hierarchical_decomp`] with the paper's x-pinned top level: GPU
/// blocks never cut the x-dimension (Figure 10).
pub fn hierarchical_decomp_yz(
    grid: GlobalGrid,
    n_gpus: usize,
    per_gpu: usize,
    split_axis: usize,
    ghost: usize,
) -> Result<Decomposition, String> {
    hierarchical_with_top(
        grid,
        block_decomp_yz(grid, n_gpus, ghost),
        n_gpus,
        per_gpu,
        split_axis,
    )
}

fn hierarchical_with_top(
    grid: GlobalGrid,
    top: Decomposition,
    n_gpus: usize,
    per_gpu: usize,
    split_axis: usize,
) -> Result<Decomposition, String> {
    assert!(split_axis < 3);
    if n_gpus == 0 || per_gpu == 0 {
        return Err("need at least one GPU and one rank per GPU".into());
    }
    let mut domains = Vec::with_capacity(n_gpus * per_gpu);
    let mut owners = Vec::with_capacity(n_gpus * per_gpu);
    for (g, block) in top.domains.iter().enumerate() {
        if block.extent(split_axis) < per_gpu {
            return Err(format!(
                "GPU block {g} extent {} along axis {split_axis} cannot host {per_gpu} ranks",
                block.extent(split_axis)
            ));
        }
        for piece in block.split_along(split_axis, per_gpu) {
            domains.push(piece);
            owners.push(OwnerKind::Gpu(g));
        }
    }
    Ok(Decomposition {
        grid,
        domains,
        owners,
        scheme: "hierarchical",
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::halo::HaloPlan;

    #[test]
    fn hierarchical_is_valid_and_gpu_major() {
        let grid = GlobalGrid::new(64, 64, 64);
        let d = hierarchical_decomp(grid, 4, 4, 2, 1).unwrap();
        assert_eq!(d.len(), 16);
        d.validate().unwrap();
        // Ranks 0..4 on GPU 0, etc.
        for r in 0..16 {
            assert_eq!(d.owners[r], OwnerKind::Gpu(r / 4));
        }
    }

    #[test]
    fn single_dimension_split_preserves_x_extent() {
        let grid = GlobalGrid::new(320, 240, 320);
        let d = hierarchical_decomp(grid, 4, 4, 2, 1).unwrap();
        d.validate().unwrap();
        let top = block_decomp(grid, 4, 1);
        // Every rank's x extent equals its GPU block's x extent.
        for r in 0..d.len() {
            assert_eq!(d.domains[r].extent(0), top.domains[r / 4].extent(0));
        }
    }

    #[test]
    fn hierarchical_has_fewer_neighbors_than_square_16(/* Figure 9/10 claim */) {
        let grid = GlobalGrid::new(128, 128, 128);
        let hier = hierarchical_decomp(grid, 4, 4, 2, 1).unwrap();
        let square = block_decomp(grid, 16, 1);
        let hp = HaloPlan::build(&hier);
        let sp = HaloPlan::build(&square);
        let h_max = (0..16).map(|r| hp.neighbor_count(r)).max().unwrap();
        let s_max = (0..16).map(|r| sp.neighbor_count(r)).max().unwrap();
        assert!(
            h_max <= s_max,
            "hierarchical max neighbors {h_max} vs square {s_max}"
        );
        // Note: the hierarchical scheme does NOT minimize raw face
        // area (thin slabs have more surface than cubes); it minimizes
        // the *message count* per rank, which is what dominates halo
        // cost for latency-bound node-local exchanges (§6.1). Total
        // message count must not exceed the square decomposition's.
        assert!(
            hp.exchanges().len() <= sp.exchanges().len(),
            "hier {} messages vs square {}",
            hp.exchanges().len(),
            sp.exchanges().len()
        );
    }

    #[test]
    fn errors_when_axis_too_small() {
        let grid = GlobalGrid::new(64, 64, 2);
        assert!(hierarchical_decomp(grid, 1, 4, 2, 1).is_err());
    }

    #[test]
    fn degenerate_single_rank() {
        let grid = GlobalGrid::new(8, 8, 8);
        let d = hierarchical_decomp(grid, 1, 1, 2, 1).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d.domains[0].zones(), 512);
    }
}
