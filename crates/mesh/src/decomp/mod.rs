//! Domain decompositions.
//!
//! All three schemes of the paper's §6.1 produce a [`Decomposition`]:
//! a list of disjoint subdomains covering the global grid, each tagged
//! with the kind of processor that will compute it.

pub mod block;
pub mod hierarchical;
pub mod weighted;

use crate::domain::Subdomain;
use crate::grid::GlobalGrid;

pub use block::{block_decomp, block_decomp_yz, factor3};
pub use hierarchical::{hierarchical_decomp, hierarchical_decomp_yz};
pub use weighted::{fold_lost_rank, weighted_hetero_decomp, WeightedConfig};

/// Which processor computes a domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OwnerKind {
    /// Offloaded to GPU `id` by its driving rank.
    Gpu(usize),
    /// Computed directly on a CPU core.
    Cpu,
}

impl OwnerKind {
    pub fn is_gpu(self) -> bool {
        matches!(self, OwnerKind::Gpu(_))
    }
}

/// A complete assignment of the global grid to ranks.
#[derive(Debug, Clone)]
pub struct Decomposition {
    pub grid: GlobalGrid,
    /// One subdomain per rank, rank order.
    pub domains: Vec<Subdomain>,
    /// The processor kind computing each rank's domain.
    pub owners: Vec<OwnerKind>,
    /// Human-readable scheme name for reports.
    pub scheme: &'static str,
}

impl Decomposition {
    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.domains.len()
    }

    pub fn is_empty(&self) -> bool {
        self.domains.is_empty()
    }

    /// Ranks whose domains run on a GPU.
    pub fn gpu_ranks(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&r| self.owners[r].is_gpu())
            .collect()
    }

    /// Ranks whose domains run on CPU cores.
    pub fn cpu_ranks(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&r| !self.owners[r].is_gpu())
            .collect()
    }

    /// Fraction of zones assigned to CPU ranks.
    pub fn cpu_zone_fraction(&self) -> f64 {
        let cpu: u64 = self
            .cpu_ranks()
            .iter()
            .map(|&r| self.domains[r].zones())
            .sum();
        cpu as f64 / self.grid.zones() as f64
    }

    /// Verify the decomposition covers the grid exactly once.
    ///
    /// Checks: every domain inside the grid; total zone count matches;
    /// domains pairwise disjoint. O(n²) pair checks are fine at node
    /// scale.
    pub fn validate(&self) -> Result<(), String> {
        if self.domains.len() != self.owners.len() {
            return Err("domains and owners length mismatch".into());
        }
        let bounds = [self.grid.nx, self.grid.ny, self.grid.nz];
        for (r, d) in self.domains.iter().enumerate() {
            for (a, (&hi, &bound)) in d.hi.iter().zip(&bounds).enumerate() {
                if hi > bound {
                    return Err(format!(
                        "rank {r} domain exceeds grid on axis {a}: {:?}",
                        d.hi
                    ));
                }
            }
        }
        let total: u64 = self.domains.iter().map(Subdomain::zones).sum();
        if total != self.grid.zones() {
            return Err(format!(
                "domains cover {total} zones, grid has {}",
                self.grid.zones()
            ));
        }
        for i in 0..self.domains.len() {
            for j in (i + 1)..self.domains.len() {
                let (a, b) = (&self.domains[i], &self.domains[j]);
                let overlap = (0..3).all(|ax| a.lo[ax] < b.hi[ax] && b.lo[ax] < a.hi[ax]);
                if overlap {
                    return Err(format!("ranks {i} and {j} overlap"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_catches_overlap_and_gaps() {
        let grid = GlobalGrid::new(4, 4, 4);
        let good = Decomposition {
            grid,
            domains: vec![
                Subdomain::new([0, 0, 0], [2, 4, 4], 1),
                Subdomain::new([2, 0, 0], [4, 4, 4], 1),
            ],
            owners: vec![OwnerKind::Gpu(0), OwnerKind::Gpu(1)],
            scheme: "test",
        };
        assert!(good.validate().is_ok());

        let overlapping = Decomposition {
            domains: vec![
                Subdomain::new([0, 0, 0], [3, 4, 4], 1),
                Subdomain::new([2, 0, 0], [4, 4, 4], 1),
            ],
            ..good.clone()
        };
        assert!(overlapping.validate().is_err());

        let gappy = Decomposition {
            domains: vec![
                Subdomain::new([0, 0, 0], [1, 4, 4], 1),
                Subdomain::new([2, 0, 0], [4, 4, 4], 1),
            ],
            ..good.clone()
        };
        assert!(gappy.validate().is_err());

        let oob = Decomposition {
            domains: vec![
                Subdomain::new([0, 0, 0], [2, 4, 4], 1),
                Subdomain::new([2, 0, 0], [4, 4, 5], 1),
            ],
            ..good
        };
        assert!(oob.validate().is_err());
    }

    #[test]
    fn rank_role_queries() {
        let grid = GlobalGrid::new(4, 4, 4);
        let d = Decomposition {
            grid,
            domains: vec![
                Subdomain::new([0, 0, 0], [4, 3, 4], 1),
                Subdomain::new([0, 3, 0], [4, 4, 4], 1),
            ],
            owners: vec![OwnerKind::Gpu(0), OwnerKind::Cpu],
            scheme: "test",
        };
        assert_eq!(d.gpu_ranks(), vec![0]);
        assert_eq!(d.cpu_ranks(), vec![1]);
        assert!((d.cpu_zone_fraction() - 0.25).abs() < 1e-12);
    }
}
