//! The traditional near-cubic ("square") block decomposition of the
//! paper's Figure 9.

use crate::decomp::{Decomposition, OwnerKind};
use crate::domain::Subdomain;
use crate::grid::GlobalGrid;

/// Factor `n` into three near-equal factors, ascending.
///
/// Mirrors `MPI_Dims_create`: the factorization minimizing the spread
/// between the largest and smallest factor.
pub fn factor3(n: usize) -> [usize; 3] {
    assert!(n > 0);
    let mut best = [1, 1, n];
    let mut best_score = usize::MAX;
    for a in 1..=n {
        if !n.is_multiple_of(a) {
            continue;
        }
        let m = n / a;
        for b in 1..=m {
            if !m.is_multiple_of(b) {
                continue;
            }
            let c = m / b;
            let mut d = [a, b, c];
            d.sort_unstable();
            let score = d[0].abs_diff(d[2]) * n + (d[0] + d[1] + d[2]);
            if score < best_score {
                best_score = score;
                best = d;
            }
        }
    }
    best
}

/// Split `n` ranks over the grid in near-cubic blocks, assigning the
/// larger factors to the longer grid axes (keeps subdomains square-ish
/// even on elongated grids). All domains are GPU-owned by convention;
/// callers relabel owners for other schemes.
pub fn block_decomp(grid: GlobalGrid, n: usize, ghost: usize) -> Decomposition {
    let factors = factor3(n); // ascending
                              // Pair ascending factors with ascending grid extents.
    let extents = [grid.nx, grid.ny, grid.nz];
    let mut axes: Vec<usize> = vec![0, 1, 2];
    axes.sort_by_key(|&a| extents[a]);
    let mut parts = [1usize; 3];
    for (slot, &axis) in axes.iter().enumerate() {
        parts[axis] = factors[slot];
    }
    for a in 0..3 {
        assert!(
            parts[a] <= extents[a],
            "more ranks than zones along axis {a}: {} > {}",
            parts[a],
            extents[a]
        );
    }

    // Cut points with remainder spread over leading pieces.
    let cuts = |n_zones: usize, n_parts: usize| -> Vec<(usize, usize)> {
        let base = n_zones / n_parts;
        let extra = n_zones % n_parts;
        let mut out = Vec::with_capacity(n_parts);
        let mut cursor = 0;
        for p in 0..n_parts {
            let t = base + usize::from(p < extra);
            out.push((cursor, cursor + t));
            cursor += t;
        }
        out
    };
    let xs = cuts(grid.nx, parts[0]);
    let ys = cuts(grid.ny, parts[1]);
    let zs = cuts(grid.nz, parts[2]);

    let mut domains = Vec::with_capacity(n);
    // Rank order: x fastest (matches the Cartesian communicator).
    for &(z0, z1) in &zs {
        for &(y0, y1) in &ys {
            for &(x0, x1) in &xs {
                domains.push(Subdomain::new([x0, y0, z0], [x1, y1, z1], ghost));
            }
        }
    }
    let owners = (0..n).map(OwnerKind::Gpu).collect();
    Decomposition {
        grid,
        domains,
        owners,
        scheme: "block",
    }
}

/// Split `n` ranks over the grid keeping the x-dimension whole: `n`
/// is factored into two near-equal factors assigned to y and z (the
/// larger factor to the longer axis). This is the paper's arrangement
/// (Figure 10: "keeping the size of the x-dimension the same for all
/// approaches") — x is the innermost, vectorized dimension and is
/// never cut.
pub fn block_decomp_yz(grid: GlobalGrid, n: usize, ghost: usize) -> Decomposition {
    // Best 2-factorization of n.
    let mut fy = 1;
    let mut fz = n;
    let mut best = usize::MAX;
    for a in 1..=n {
        if !n.is_multiple_of(a) {
            continue;
        }
        let b = n / a;
        let score = a.abs_diff(b);
        if score < best {
            best = score;
            fy = a.min(b);
            fz = a.max(b);
        }
    }
    // Larger factor on the longer of (y, z).
    let (py, pz) = if grid.ny >= grid.nz {
        (fz, fy)
    } else {
        (fy, fz)
    };
    assert!(
        py <= grid.ny && pz <= grid.nz,
        "cannot split {n} ranks over y={}, z={}",
        grid.ny,
        grid.nz
    );
    let cuts = |n_zones: usize, n_parts: usize| -> Vec<(usize, usize)> {
        let base = n_zones / n_parts;
        let extra = n_zones % n_parts;
        let mut out = Vec::with_capacity(n_parts);
        let mut cursor = 0;
        for p in 0..n_parts {
            let t = base + usize::from(p < extra);
            out.push((cursor, cursor + t));
            cursor += t;
        }
        out
    };
    let ys = cuts(grid.ny, py);
    let zs = cuts(grid.nz, pz);
    let mut domains = Vec::with_capacity(n);
    for &(z0, z1) in &zs {
        for &(y0, y1) in &ys {
            domains.push(Subdomain::new([0, y0, z0], [grid.nx, y1, z1], ghost));
        }
    }
    let owners = (0..n).map(OwnerKind::Gpu).collect();
    Decomposition {
        grid,
        domains,
        owners,
        scheme: "block-yz",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor3_matches_known_cases() {
        assert_eq!(factor3(1), [1, 1, 1]);
        assert_eq!(factor3(4), [1, 2, 2]);
        assert_eq!(factor3(8), [2, 2, 2]);
        assert_eq!(factor3(16), [2, 2, 4]);
        assert_eq!(factor3(12), [2, 2, 3]);
        assert_eq!(factor3(13), [1, 1, 13]);
    }

    #[test]
    fn block_decomp_is_valid_for_many_counts() {
        let grid = GlobalGrid::new(64, 48, 32);
        for n in [1, 2, 3, 4, 6, 8, 12, 16] {
            let d = block_decomp(grid, n, 1);
            assert_eq!(d.len(), n);
            d.validate().unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }

    #[test]
    fn larger_factors_go_to_longer_axes() {
        let grid = GlobalGrid::new(320, 80, 80);
        let d = block_decomp(grid, 4, 1);
        // 4 = 1x2x2; the long x axis should get a factor too... with
        // ascending pairing, x (longest) gets the largest factor 2.
        let x_cuts: std::collections::BTreeSet<usize> = d.domains.iter().map(|s| s.lo[0]).collect();
        assert!(x_cuts.len() >= 2, "x axis should be cut: {x_cuts:?}");
    }

    #[test]
    fn remainder_zones_are_distributed() {
        let grid = GlobalGrid::new(10, 10, 10);
        let d = block_decomp(grid, 8, 1);
        d.validate().unwrap();
        // 10 = 5 + 5 per axis: all subdomains 5x5x5.
        assert!(d.domains.iter().all(|s| s.zones() == 125));
        let d3 = block_decomp(GlobalGrid::new(10, 3, 3), 3, 1);
        d3.validate().unwrap();
        // 3 parts along x (longest): 4 + 3 + 3.
        let mut sizes: Vec<u64> = d3.domains.iter().map(|s| s.zones()).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![27, 27, 36]);
    }

    #[test]
    fn yz_decomp_keeps_x_whole() {
        let grid = GlobalGrid::new(320, 240, 160);
        let d = block_decomp_yz(grid, 4, 1);
        d.validate().unwrap();
        assert_eq!(d.len(), 4);
        for s in &d.domains {
            assert_eq!(s.extent(0), 320, "x must stay whole");
        }
        // 2x2 over (y, z).
        assert_eq!(d.domains[0].extents(), [320, 120, 80]);
    }

    #[test]
    fn yz_decomp_puts_larger_factor_on_longer_axis() {
        let grid = GlobalGrid::new(64, 400, 100);
        let d = block_decomp_yz(grid, 8, 1);
        d.validate().unwrap();
        // 8 = 2x4: y (longer) gets 4.
        let y_cuts: std::collections::BTreeSet<usize> = d.domains.iter().map(|s| s.lo[1]).collect();
        assert_eq!(y_cuts.len(), 4);
    }

    #[test]
    fn imbalance_is_bounded_by_one_plane() {
        let grid = GlobalGrid::new(37, 23, 11);
        let d = block_decomp(grid, 8, 1);
        d.validate().unwrap();
        let max = d.domains.iter().map(Subdomain::zones).max().unwrap();
        let min = d.domains.iter().map(Subdomain::zones).min().unwrap();
        // Near-equal splits: max/min bounded by the remainder planes.
        assert!((max as f64 / min as f64) < 1.5, "max {max} min {min}");
    }
}
