//! The heterogeneous weighted decomposition (Figure 10c).
//!
//! "To achieve load balance in the heterogeneous case, we used a
//! weighted decomposition between the CPU cores and the GPUs,
//! assigning less work to the CPU cores, as illustrated by the thin
//! slabs in Figure 10 (c)." (§6.2.)
//!
//! Each GPU's near-cubic block donates a thin slab of `cpu_fraction`
//! of its y-extent; the slab is split into one piece per CPU rank
//! attached to that GPU. The *minimum granularity* is one y-plane per
//! CPU rank: when `cpu_fraction` asks for less, the decomposition
//! silently grows the slab to the minimum — this is precisely the
//! regime where the paper's Figures 13/14 show the Heterogeneous mode
//! losing (the CPU ranks cannot be given a small enough share).

use crate::decomp::block::{block_decomp, block_decomp_yz};
use crate::decomp::{Decomposition, OwnerKind};
use crate::grid::GlobalGrid;

/// Parameters of the weighted heterogeneous decomposition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightedConfig {
    /// Number of GPUs (each gets a top-level block and one driving
    /// rank).
    pub n_gpus: usize,
    /// CPU worker ranks attached to each GPU block.
    pub cpu_per_gpu: usize,
    /// Desired fraction of each block's zones for its CPU ranks
    /// (0.0..1.0); the realized fraction honors the one-plane-per-rank
    /// minimum granularity.
    pub cpu_fraction: f64,
    /// Axis from which CPU slabs are carved (the paper uses y = 1).
    pub carve_axis: usize,
    /// Ghost width.
    pub ghost: usize,
    /// Keep the x-dimension whole in the top-level GPU blocks (the
    /// paper's Figure 10 arrangement).
    pub pin_x: bool,
}

impl WeightedConfig {
    /// The paper's RZHasGPU arrangement: 4 GPUs, 3 CPU workers each
    /// (12 of the 16 cores), carving in y.
    pub fn rzhasgpu(cpu_fraction: f64) -> Self {
        WeightedConfig {
            n_gpus: 4,
            cpu_per_gpu: 3,
            cpu_fraction,
            carve_axis: 1,
            ghost: 1,
            pin_x: true,
        }
    }
}

/// Build the heterogeneous decomposition.
///
/// Rank order: ranks `0..n_gpus` are the GPU-driving ranks (owning the
/// shrunken blocks); ranks `n_gpus..` are CPU workers, grouped by GPU
/// block.
///
/// Fails when a block's carve axis cannot give each CPU rank at least
/// one plane while leaving the GPU a non-empty remainder.
pub fn weighted_hetero_decomp(
    grid: GlobalGrid,
    cfg: &WeightedConfig,
) -> Result<Decomposition, String> {
    assert!(cfg.carve_axis < 3);
    if cfg.n_gpus == 0 {
        return Err("need at least one GPU".into());
    }
    if !(0.0..1.0).contains(&cfg.cpu_fraction) {
        return Err(format!("cpu_fraction {} out of [0,1)", cfg.cpu_fraction));
    }
    let top = if cfg.pin_x {
        block_decomp_yz(grid, cfg.n_gpus, cfg.ghost)
    } else {
        block_decomp(grid, cfg.n_gpus, cfg.ghost)
    };
    if cfg.cpu_per_gpu == 0 {
        // Pure GPU decomposition: identical to Default mode's blocks.
        return Ok(Decomposition {
            scheme: "weighted",
            ..top
        });
    }

    let mut gpu_domains = Vec::with_capacity(cfg.n_gpus);
    let mut cpu_domains = Vec::with_capacity(cfg.n_gpus * cfg.cpu_per_gpu);
    for (g, block) in top.domains.iter().enumerate() {
        let extent = block.extent(cfg.carve_axis);
        // Desired slab thickness in planes, honoring the minimum of
        // one plane per CPU rank.
        let desired = (cfg.cpu_fraction * extent as f64).round() as usize;
        let thickness = desired.max(cfg.cpu_per_gpu);
        if thickness >= extent {
            return Err(format!(
                "GPU block {g}: carve axis extent {extent} cannot host {} CPU planes \
                 and a non-empty GPU remainder",
                cfg.cpu_per_gpu
            ));
        }
        let (gpu_part, slab) = block.carve_high(cfg.carve_axis, thickness);
        gpu_domains.push((g, gpu_part));
        for piece in slab.split_along(cfg.carve_axis, cfg.cpu_per_gpu) {
            cpu_domains.push(piece);
        }
    }

    let mut domains = Vec::with_capacity(cfg.n_gpus * (1 + cfg.cpu_per_gpu));
    let mut owners = Vec::with_capacity(domains.capacity());
    for (g, d) in gpu_domains {
        domains.push(d);
        owners.push(OwnerKind::Gpu(g));
    }
    for d in cpu_domains {
        domains.push(d);
        owners.push(OwnerKind::Cpu);
    }
    Ok(Decomposition {
        grid,
        domains,
        owners,
        scheme: "weighted",
    })
}

/// Graceful degradation after a permanent CPU-rank loss: fold the lost
/// rank's slab back into a box-mergeable neighbor, preferring the
/// parent GPU block (so a Heterogeneous run degrades toward the
/// Default decomposition) and falling back to a CPU sibling slab when
/// the lost slab does not touch its GPU remainder.
///
/// Returns the degraded decomposition with one fewer rank; rank
/// indices above `lost` shift down by one. Losing a GPU-driving rank
/// is not foldable (its block has no same-class absorber) and returns
/// a typed error.
pub fn fold_lost_rank(decomp: &Decomposition, lost: usize) -> Result<Decomposition, String> {
    if lost >= decomp.len() {
        return Err(format!(
            "lost rank {lost} out of range (decomposition has {} ranks)",
            decomp.len()
        ));
    }
    if decomp.owners[lost].is_gpu() {
        return Err(format!(
            "rank {lost} drives a GPU; a lost device block cannot be folded back"
        ));
    }
    let lost_dom = decomp.domains[lost];
    let mut candidates = Vec::new();
    for (r, d) in decomp.domains.iter().enumerate() {
        if r == lost {
            continue;
        }
        if let Some(merged) = d.merged_box(&lost_dom) {
            candidates.push((r, merged));
        }
    }
    let (absorber, merged) = candidates
        .iter()
        .find(|(r, _)| decomp.owners[*r].is_gpu())
        .or_else(|| candidates.first())
        .copied()
        .ok_or_else(|| format!("rank {lost}: no box-mergeable neighbor can absorb its zones"))?;
    let mut domains = decomp.domains.clone();
    let mut owners = decomp.owners.clone();
    domains[absorber] = merged;
    domains.remove(lost);
    owners.remove(lost);
    let out = Decomposition {
        grid: decomp.grid,
        domains,
        owners,
        scheme: "weighted-foldback",
    };
    out.validate()?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_is_valid_and_ordered() {
        let grid = GlobalGrid::new(320, 480, 160);
        let d = weighted_hetero_decomp(grid, &WeightedConfig::rzhasgpu(0.02)).unwrap();
        assert_eq!(d.len(), 16);
        d.validate().unwrap();
        assert_eq!(d.gpu_ranks(), vec![0, 1, 2, 3]);
        assert_eq!(d.cpu_ranks().len(), 12);
    }

    #[test]
    fn realized_fraction_tracks_request_when_feasible() {
        let grid = GlobalGrid::new(320, 480, 160);
        // 480 y-zones over (1,2,2) top blocks... whatever the block
        // shape, 5% of the carve extent is >= 3 planes here.
        let d = weighted_hetero_decomp(grid, &WeightedConfig::rzhasgpu(0.05)).unwrap();
        let f = d.cpu_zone_fraction();
        assert!((f - 0.05).abs() < 0.02, "realized fraction {f}");
    }

    #[test]
    fn minimum_granularity_inflates_small_requests() {
        // y = 80 per block and 3 CPU ranks: minimum slab is 3 planes
        // = 3.75% of the block even though we ask for 1%.
        let grid = GlobalGrid::new(320, 80, 320);
        let cfg = WeightedConfig {
            n_gpus: 4,
            cpu_per_gpu: 3,
            cpu_fraction: 0.01,
            carve_axis: 1,
            ghost: 1,
            pin_x: false,
        };
        let d = weighted_hetero_decomp(grid, &cfg).unwrap();
        d.validate().unwrap();
        let f = d.cpu_zone_fraction();
        assert!(f > 0.03, "min granularity should force f up: {f}");
    }

    #[test]
    fn paper_fifteen_percent_case() {
        // Paper: "the smallest number of zones we are able to assign to
        // the CPU (12 cores) is 15% of zones" at the low end of the
        // y-dimension. With blocks of 20 y-planes and 3 CPU ranks per
        // block, 3/20 = 15%.
        let grid = GlobalGrid::new(320, 20, 320);
        let cfg = WeightedConfig {
            n_gpus: 4,
            cpu_per_gpu: 3,
            cpu_fraction: 0.01,
            carve_axis: 1,
            ghost: 1,
            pin_x: false,
        };
        // Top blocks: factor3(4) = [1,2,2]; y is the smallest axis so
        // it keeps factor 1 → blocks span all 20 y-planes.
        let d = weighted_hetero_decomp(grid, &cfg).unwrap();
        let f = d.cpu_zone_fraction();
        assert!((f - 0.15).abs() < 0.01, "realized fraction {f}");
    }

    #[test]
    fn cpu_slabs_keep_x_extent() {
        let grid = GlobalGrid::new(320, 480, 160);
        let d = weighted_hetero_decomp(grid, &WeightedConfig::rzhasgpu(0.02)).unwrap();
        for &r in &d.cpu_ranks() {
            // CPU slab x extent equals its GPU block's x extent (thin
            // slabs in y only).
            assert!(d.domains[r].extent(0) >= 160);
        }
    }

    #[test]
    fn infeasible_carve_is_an_error() {
        // 3 CPU planes needed but block has only 3 y-planes: no
        // remainder for the GPU.
        let grid = GlobalGrid::new(64, 3, 64);
        let cfg = WeightedConfig {
            n_gpus: 1,
            cpu_per_gpu: 3,
            cpu_fraction: 0.5,
            carve_axis: 1,
            ghost: 1,
            pin_x: false,
        };
        assert!(weighted_hetero_decomp(grid, &cfg).is_err());
    }

    #[test]
    fn zero_cpu_ranks_degenerates_to_block() {
        let grid = GlobalGrid::new(64, 64, 64);
        let cfg = WeightedConfig {
            n_gpus: 4,
            cpu_per_gpu: 0,
            cpu_fraction: 0.0,
            carve_axis: 1,
            ghost: 1,
            pin_x: true,
        };
        let d = weighted_hetero_decomp(grid, &cfg).unwrap();
        assert_eq!(d.len(), 4);
        assert!(d.cpu_ranks().is_empty());
        d.validate().unwrap();
    }

    /// All pairwise face-neighbor links of a decomposition, as sorted
    /// index pairs.
    fn neighbor_links(d: &Decomposition) -> Vec<(usize, usize)> {
        let mut links = Vec::new();
        for i in 0..d.len() {
            for j in (i + 1)..d.len() {
                if d.domains[i].is_face_neighbor(&d.domains[j]) {
                    links.push((i, j));
                }
            }
        }
        links
    }

    #[test]
    fn foldback_into_parent_gpu_conserves_zones_and_validates() {
        let grid = GlobalGrid::new(320, 480, 160);
        let d = weighted_hetero_decomp(grid, &WeightedConfig::rzhasgpu(0.05)).unwrap();
        // The first CPU slab of GPU block 0 (rank 4) touches its GPU
        // remainder: foldback must prefer the GPU absorber.
        let lost = 4;
        let folded = fold_lost_rank(&d, lost).unwrap();
        folded.validate().unwrap();
        assert_eq!(folded.len(), d.len() - 1);
        assert_eq!(folded.scheme, "weighted-foldback");
        let total_before: u64 = d.domains.iter().map(|s| s.zones()).sum();
        let total_after: u64 = folded.domains.iter().map(|s| s.zones()).sum();
        assert_eq!(total_before, total_after, "zones conserved");
        // GPU 0's block grew by exactly the lost slab.
        assert_eq!(
            folded.domains[0].zones(),
            d.domains[0].zones() + d.domains[lost].zones()
        );
        assert!(folded.owners[0].is_gpu());
        // Degrading toward Default: the CPU share shrank.
        assert!(folded.cpu_zone_fraction() < d.cpu_zone_fraction());
    }

    #[test]
    fn foldback_of_a_middle_slab_uses_a_cpu_sibling() {
        let grid = GlobalGrid::new(320, 480, 160);
        let d = weighted_hetero_decomp(grid, &WeightedConfig::rzhasgpu(0.05)).unwrap();
        // Rank 5 is the middle slab of GPU block 0: its box-mergeable
        // neighbors are CPU siblings (ranks 4 and 6) only.
        let lost = 5;
        assert!(d.domains[lost].merged_box(&d.domains[0]).is_none());
        let folded = fold_lost_rank(&d, lost).unwrap();
        folded.validate().unwrap();
        assert_eq!(folded.len(), d.len() - 1);
        // Same CPU share as before: the zones moved between siblings.
        assert!((folded.cpu_zone_fraction() - d.cpu_zone_fraction()).abs() < 1e-12);
        // Sibling rank 4 absorbed the slab.
        assert_eq!(
            folded.domains[4].zones(),
            d.domains[4].zones() + d.domains[lost].zones()
        );
    }

    #[test]
    fn foldback_preserves_neighbor_connectivity() {
        let grid = GlobalGrid::new(320, 480, 160);
        let d = weighted_hetero_decomp(grid, &WeightedConfig::rzhasgpu(0.05)).unwrap();
        let lost = 4;
        let absorber = 0; // parent GPU block
        let old_links = neighbor_links(&d);
        let folded = fold_lost_rank(&d, lost).unwrap();
        let new_links = neighbor_links(&folded);
        // Index map: old rank -> new rank (absorber keeps its slot).
        let map = |r: usize| if r > lost { r - 1 } else { r };
        // Every old link not involving the lost rank survives; links to
        // the lost rank are re-routed to the absorber.
        for &(i, j) in &old_links {
            let (a, b) = if i == lost {
                (map(absorber), map(j))
            } else if j == lost {
                (map(i), map(absorber))
            } else {
                (map(i), map(j))
            };
            if a == b {
                continue; // the absorber's own link to the lost slab
            }
            let link = (a.min(b), a.max(b));
            assert!(
                new_links.contains(&link),
                "old link ({i},{j}) lost after foldback (mapped {link:?})"
            );
        }
        // No remaining rank was orphaned.
        for r in 0..folded.len() {
            assert!(
                new_links.iter().any(|&(a, b)| a == r || b == r),
                "rank {r} has no neighbors after foldback"
            );
        }
    }

    #[test]
    fn foldback_rejects_gpu_ranks_and_bad_indices() {
        let grid = GlobalGrid::new(320, 480, 160);
        let d = weighted_hetero_decomp(grid, &WeightedConfig::rzhasgpu(0.05)).unwrap();
        assert!(fold_lost_rank(&d, 0).is_err(), "GPU rank is not foldable");
        assert!(fold_lost_rank(&d, 99).is_err(), "out of range");
    }

    #[test]
    fn repeated_foldback_degrades_to_default_shape() {
        // Losing every CPU rank one by one folds the whole slab stack
        // back into the GPU blocks: 16 ranks -> 4 ranks, all GPU.
        let grid = GlobalGrid::new(320, 480, 160);
        let mut d = weighted_hetero_decomp(grid, &WeightedConfig::rzhasgpu(0.05)).unwrap();
        while let Some(&lost) = d.cpu_ranks().first() {
            d = fold_lost_rank(&d, lost).unwrap();
        }
        assert_eq!(d.len(), 4);
        assert!(d.cpu_ranks().is_empty());
        assert_eq!(d.cpu_zone_fraction(), 0.0);
        d.validate().unwrap();
    }

    #[test]
    fn bad_fraction_rejected() {
        let grid = GlobalGrid::new(64, 64, 64);
        let mut cfg = WeightedConfig::rzhasgpu(1.5);
        assert!(weighted_hetero_decomp(grid, &cfg).is_err());
        cfg.cpu_fraction = -0.1;
        assert!(weighted_hetero_decomp(grid, &cfg).is_err());
    }
}
