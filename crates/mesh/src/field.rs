//! Zone- and node-centered fields over a subdomain.
//!
//! A `Field` owns a dense `f64` array covering the subdomain's owned
//! extent plus its ghost layer, x fastest. Kernels written against the
//! portability layer receive the raw slice and strides; the pack/
//! unpack helpers here implement the functional side of the halo
//! exchange.
//!
//! The geometry itself (dims/strides/pack/unpack/reflect over one
//! core+ghost box) is implemented once as free functions at the bottom
//! of this module, shared with the multi-variable
//! [`SoaBlock`](crate::soa::SoaBlock) slab.

use crate::domain::Subdomain;

/// Where values live on the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Centering {
    /// One value per zone (density, pressure, energy…).
    Zone,
    /// One value per node (velocity, position…): extents + 1.
    Node,
}

/// Which side of an axis a face is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    Low,
    High,
}

/// A dense field on one subdomain (owned + ghost).
#[derive(Debug, Clone)]
pub struct Field {
    data: Vec<f64>,
    /// Core (owned) extents, excluding ghosts, in field units
    /// (zones, or zones+1 for node centering).
    core: [usize; 3],
    ghost: usize,
    centering: Centering,
}

impl Field {
    /// Allocate a zero-filled field for `sub`.
    pub fn new(sub: &Subdomain, centering: Centering) -> Self {
        let bump = match centering {
            Centering::Zone => 0,
            Centering::Node => 1,
        };
        let core = [
            sub.extent(0) + bump,
            sub.extent(1) + bump,
            sub.extent(2) + bump,
        ];
        let g = sub.ghost;
        let len = (core[0] + 2 * g) * (core[1] + 2 * g) * (core[2] + 2 * g);
        Field {
            data: vec![0.0; len],
            core,
            ghost: g,
            centering,
        }
    }

    pub fn centering(&self) -> Centering {
        self.centering
    }

    pub fn ghost(&self) -> usize {
        self.ghost
    }

    /// Total allocated extents (core + 2·ghost).
    pub fn dims(&self) -> [usize; 3] {
        dims_of(self.core, self.ghost)
    }

    /// Core (owned) extents.
    pub fn core(&self) -> [usize; 3] {
        self.core
    }

    /// Strides (x, y, z) of the allocated array, x fastest.
    pub fn strides(&self) -> [usize; 3] {
        strides_of(self.core, self.ghost)
    }

    /// Linear index of core-relative coordinates (may address ghosts
    /// with indices in `-ghost..core+ghost` shifted by `ghost`, i.e.
    /// callers pass *allocated* indices).
    #[inline]
    pub fn idx(&self, i: usize, j: usize, k: usize) -> usize {
        let s = self.strides();
        i + j * s[1] + k * s[2]
    }

    /// Linear index of owned coordinates (0-based within the core).
    #[inline]
    pub fn idx_owned(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.core[0] && j < self.core[1] && k < self.core[2]);
        let g = self.ghost;
        self.idx(i + g, j + g, k + g)
    }

    /// Value at owned coordinates.
    #[inline]
    pub fn get(&self, i: usize, j: usize, k: usize) -> f64 {
        self.data[self.idx_owned(i, j, k)]
    }

    /// Set value at owned coordinates.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, k: usize, v: f64) {
        let idx = self.idx_owned(i, j, k);
        self.data[idx] = v;
    }

    pub fn data(&self) -> &[f64] {
        &self.data
    }

    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Fill every entry (including ghosts).
    pub fn fill(&mut self, v: f64) {
        self.data.fill(v);
    }

    /// Fill owned entries only.
    pub fn fill_owned(&mut self, v: f64) {
        fill_owned_in(self.core, self.ghost, &mut self.data, v);
    }

    /// Sum of owned entries (conservation checks).
    pub fn sum_owned(&self) -> f64 {
        sum_owned_in(self.core, self.ghost, &self.data)
    }

    /// Number of f64 values in one face strip of `width` layers.
    pub fn face_len(&self, axis: usize, width: usize) -> usize {
        face_len_of(self.core, axis, width)
    }

    /// Pack the outermost `width` owned layers on `side` of `axis`
    /// into a buffer (k, j, i ascending order).
    pub fn pack_face(&self, axis: usize, side: Side, width: usize) -> Vec<f64> {
        pack_face_in(self.core, self.ghost, &self.data, axis, side, width)
    }

    /// Unpack a neighbor's face buffer into the ghost layers on `side`
    /// of `axis` (the mirror of [`Field::pack_face`] on the peer).
    pub fn unpack_ghost(&mut self, axis: usize, side: Side, width: usize, buf: &[f64]) {
        unpack_ghost_in(
            self.core,
            self.ghost,
            &mut self.data,
            axis,
            side,
            width,
            buf,
        );
    }

    /// Pack an arbitrary box `[lo, hi)` in *allocated* local
    /// coordinates (so ghosts are addressable) into a buffer, k, j, i
    /// ascending.
    pub fn pack_box(&self, lo: [usize; 3], hi: [usize; 3]) -> Vec<f64> {
        pack_box_in(self.core, self.ghost, &self.data, lo, hi)
    }

    /// Unpack a buffer (as produced by [`Field::pack_box`]) into the
    /// box `[lo, hi)` in allocated local coordinates.
    pub fn unpack_box(&mut self, lo: [usize; 3], hi: [usize; 3], buf: &[f64]) {
        unpack_box_in(self.core, self.ghost, &mut self.data, lo, hi, buf);
    }

    /// Mirror the owned boundary layer into the ghost layer on a
    /// physical boundary (reflecting BC support).
    pub fn reflect_into_ghost(&mut self, axis: usize, side: Side, sign: f64) {
        reflect_into_ghost_in(self.core, self.ghost, &mut self.data, axis, side, sign);
    }
}

// ---------------------------------------------------------------------------
// Shared geometry kernels.
//
// One variable's geometry is a dense core+ghost box, x fastest. `Field`
// (one variable per allocation) and `SoaBlock` (all variables packed in
// one slab) share these implementations, parameterized by
// (core, ghost, data-slice) so neither container pays for the other.
// ---------------------------------------------------------------------------

pub(crate) fn dims_of(core: [usize; 3], ghost: usize) -> [usize; 3] {
    let g = 2 * ghost;
    [core[0] + g, core[1] + g, core[2] + g]
}

pub(crate) fn strides_of(core: [usize; 3], ghost: usize) -> [usize; 3] {
    let d = dims_of(core, ghost);
    [1, d[0], d[0] * d[1]]
}

#[inline]
pub(crate) fn idx_in(core: [usize; 3], ghost: usize, i: usize, j: usize, k: usize) -> usize {
    let s = strides_of(core, ghost);
    i + j * s[1] + k * s[2]
}

#[inline]
pub(crate) fn idx_owned_in(core: [usize; 3], ghost: usize, i: usize, j: usize, k: usize) -> usize {
    debug_assert!(i < core[0] && j < core[1] && k < core[2]);
    idx_in(core, ghost, i + ghost, j + ghost, k + ghost)
}

pub(crate) fn fill_owned_in(core: [usize; 3], ghost: usize, data: &mut [f64], v: f64) {
    let s = strides_of(core, ghost);
    for k in 0..core[2] {
        for j in 0..core[1] {
            let row = (k + ghost) * s[2] + (j + ghost) * s[1] + ghost;
            data[row..row + core[0]].fill(v);
        }
    }
}

pub(crate) fn sum_owned_in(core: [usize; 3], ghost: usize, data: &[f64]) -> f64 {
    let s = strides_of(core, ghost);
    let mut total = 0.0;
    for k in 0..core[2] {
        for j in 0..core[1] {
            let row = (k + ghost) * s[2] + (j + ghost) * s[1] + ghost;
            total += data[row..row + core[0]].iter().sum::<f64>();
        }
    }
    total
}

pub(crate) fn face_len_of(core: [usize; 3], axis: usize, width: usize) -> usize {
    let mut len = width;
    for (a, &extent) in core.iter().enumerate() {
        if a != axis {
            len *= extent;
        }
    }
    len
}

pub(crate) fn pack_face_in(
    core: [usize; 3],
    ghost: usize,
    data: &[f64],
    axis: usize,
    side: Side,
    width: usize,
) -> Vec<f64> {
    assert!(width <= core[axis], "face wider than the core");
    let range = |a: usize| -> (usize, usize) {
        if a == axis {
            match side {
                Side::Low => (0, width),
                Side::High => (core[a] - width, core[a]),
            }
        } else {
            (0, core[a])
        }
    };
    let (i0, i1) = range(0);
    let (j0, j1) = range(1);
    let (k0, k1) = range(2);
    let mut out = Vec::with_capacity((i1 - i0) * (j1 - j0) * (k1 - k0));
    for k in k0..k1 {
        for j in j0..j1 {
            let base = idx_owned_in(core, ghost, i0, j, k);
            out.extend_from_slice(&data[base..base + (i1 - i0)]);
        }
    }
    out
}

pub(crate) fn unpack_ghost_in(
    core: [usize; 3],
    ghost: usize,
    data: &mut [f64],
    axis: usize,
    side: Side,
    width: usize,
    buf: &[f64],
) {
    assert!(width <= ghost, "ghost layer narrower than the message");
    let g = ghost;
    // Ghost index range in allocated coordinates along `axis`.
    let range = |a: usize| -> (usize, usize) {
        if a == axis {
            match side {
                Side::Low => (g - width, g),
                Side::High => (g + core[a], g + core[a] + width),
            }
        } else {
            (g, g + core[a])
        }
    };
    let (i0, i1) = range(0);
    let (j0, j1) = range(1);
    let (k0, k1) = range(2);
    assert_eq!(buf.len(), (i1 - i0) * (j1 - j0) * (k1 - k0));
    let s = strides_of(core, ghost);
    let mut cursor = 0;
    for k in k0..k1 {
        for j in j0..j1 {
            let base = i0 + j * s[1] + k * s[2];
            let n = i1 - i0;
            data[base..base + n].copy_from_slice(&buf[cursor..cursor + n]);
            cursor += n;
        }
    }
}

pub(crate) fn pack_box_in(
    core: [usize; 3],
    ghost: usize,
    data: &[f64],
    lo: [usize; 3],
    hi: [usize; 3],
) -> Vec<f64> {
    let d = dims_of(core, ghost);
    assert!(
        (0..3).all(|a| lo[a] < hi[a] && hi[a] <= d[a]),
        "box {lo:?}..{hi:?} outside field dims {d:?}"
    );
    let s = strides_of(core, ghost);
    let n = (hi[0] - lo[0]) * (hi[1] - lo[1]) * (hi[2] - lo[2]);
    let mut out = Vec::with_capacity(n);
    for k in lo[2]..hi[2] {
        for j in lo[1]..hi[1] {
            let base = lo[0] + j * s[1] + k * s[2];
            out.extend_from_slice(&data[base..base + (hi[0] - lo[0])]);
        }
    }
    out
}

pub(crate) fn unpack_box_in(
    core: [usize; 3],
    ghost: usize,
    data: &mut [f64],
    lo: [usize; 3],
    hi: [usize; 3],
    buf: &[f64],
) {
    let d = dims_of(core, ghost);
    assert!(
        (0..3).all(|a| lo[a] < hi[a] && hi[a] <= d[a]),
        "box {lo:?}..{hi:?} outside field dims {d:?}"
    );
    let n = (hi[0] - lo[0]) * (hi[1] - lo[1]) * (hi[2] - lo[2]);
    assert_eq!(buf.len(), n, "buffer length mismatch");
    let s = strides_of(core, ghost);
    let mut cursor = 0;
    let run = hi[0] - lo[0];
    for k in lo[2]..hi[2] {
        for j in lo[1]..hi[1] {
            let base = lo[0] + j * s[1] + k * s[2];
            data[base..base + run].copy_from_slice(&buf[cursor..cursor + run]);
            cursor += run;
        }
    }
}

pub(crate) fn reflect_into_ghost_in(
    core: [usize; 3],
    ghost: usize,
    data: &mut [f64],
    axis: usize,
    side: Side,
    sign: f64,
) {
    let g = ghost;
    if g == 0 {
        return;
    }
    let face = pack_face_in(core, ghost, data, axis, side, g);
    // Reverse the layer order along `axis` so the nearest owned
    // layer lands in the nearest ghost layer.
    let mut mirrored = vec![0.0; face.len()];
    let layer = face_len_of(core, axis, 1);
    debug_assert_eq!(face.len(), layer * g);
    // pack_face orders k,j,i ascending; along x the layers are
    // interleaved, so handle the general case index-wise.
    if axis == 0 {
        // For axis 0 the "layers" are contiguous runs of length g
        // within each row; easier to mirror via index arithmetic.
        let rows = face.len() / g;
        for r in 0..rows {
            for w in 0..g {
                mirrored[r * g + w] = sign * face[r * g + (g - 1 - w)];
            }
        }
    } else {
        for w in 0..g {
            let src = &face[w * layer..(w + 1) * layer];
            let dst = &mut mirrored[(g - 1 - w) * layer..(g - w) * layer];
            for (d, s) in dst.iter_mut().zip(src) {
                *d = sign * s;
            }
        }
    }
    unpack_ghost_in(core, ghost, data, axis, side, g, &mirrored);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sub() -> Subdomain {
        Subdomain::new([0, 0, 0], [4, 3, 2], 1)
    }

    #[test]
    fn zone_field_dimensions() {
        let f = Field::new(&sub(), Centering::Zone);
        assert_eq!(f.core(), [4, 3, 2]);
        assert_eq!(f.dims(), [6, 5, 4]);
        assert_eq!(f.data().len(), 6 * 5 * 4);
        assert_eq!(f.strides(), [1, 6, 30]);
    }

    #[test]
    fn node_field_is_one_larger() {
        let f = Field::new(&sub(), Centering::Node);
        assert_eq!(f.core(), [5, 4, 3]);
        assert_eq!(f.centering(), Centering::Node);
    }

    #[test]
    fn get_set_roundtrip_in_owned_region() {
        let mut f = Field::new(&sub(), Centering::Zone);
        f.set(2, 1, 1, 7.5);
        assert_eq!(f.get(2, 1, 1), 7.5);
        assert_eq!(f.get(0, 0, 0), 0.0);
    }

    #[test]
    fn fill_owned_leaves_ghosts_alone() {
        let mut f = Field::new(&sub(), Centering::Zone);
        f.fill(-1.0);
        f.fill_owned(2.0);
        assert_eq!(f.get(0, 0, 0), 2.0);
        // A ghost corner is still -1.
        assert_eq!(f.data()[0], -1.0);
        let zones = 4 * 3 * 2;
        assert_eq!(f.sum_owned(), 2.0 * zones as f64);
    }

    #[test]
    fn pack_face_extracts_the_right_strip() {
        let mut f = Field::new(&sub(), Centering::Zone);
        // Tag each owned entry with i + 10j + 100k.
        for k in 0..2 {
            for j in 0..3 {
                for i in 0..4 {
                    f.set(i, j, k, (i + 10 * j + 100 * k) as f64);
                }
            }
        }
        let hi_x = f.pack_face(0, Side::High, 1);
        assert_eq!(hi_x.len(), 3 * 2);
        assert!(hi_x.iter().all(|&v| (v as usize) % 10 == 3), "{hi_x:?}");
        let lo_y = f.pack_face(1, Side::Low, 1);
        assert_eq!(lo_y.len(), 4 * 2);
        assert!(lo_y.iter().all(|&v| ((v as usize) / 10).is_multiple_of(10)));
    }

    #[test]
    fn pack_unpack_between_neighbors_matches() {
        // Two neighbors along x: left's High face becomes right's Low
        // ghosts.
        let left_sub = Subdomain::new([0, 0, 0], [4, 3, 2], 1);
        let right_sub = Subdomain::new([4, 0, 0], [8, 3, 2], 1);
        let mut left = Field::new(&left_sub, Centering::Zone);
        let mut right = Field::new(&right_sub, Centering::Zone);
        for k in 0..2 {
            for j in 0..3 {
                for i in 0..4 {
                    left.set(i, j, k, (100 + i) as f64 + (10 * j + 100 * k) as f64);
                }
            }
        }
        let msg = left.pack_face(0, Side::High, 1);
        right.unpack_ghost(0, Side::Low, 1, &msg);
        // Right's low-x ghost at (g-1, j+g, k+g) equals left's i=3.
        let g = 1;
        for k in 0..2 {
            for j in 0..3 {
                let idx = right.idx(g - 1, j + g, k + g);
                assert_eq!(right.data()[idx], left.get(3, j, k));
            }
        }
    }

    #[test]
    #[should_panic(expected = "face wider")]
    fn pack_wider_than_core_panics() {
        let f = Field::new(&sub(), Centering::Zone);
        let _ = f.pack_face(2, Side::Low, 3);
    }

    #[test]
    fn unpack_checks_buffer_length() {
        let mut f = Field::new(&sub(), Centering::Zone);
        let bad = vec![0.0; 5];
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            f.unpack_ghost(0, Side::Low, 1, &bad);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn reflect_into_ghost_mirrors_with_sign() {
        let mut f = Field::new(&sub(), Centering::Zone);
        for i in 0..4 {
            f.set(i, 0, 0, (i + 1) as f64);
        }
        f.reflect_into_ghost(0, Side::Low, -1.0);
        // Ghost at allocated (0, g, g) should be -value at owned i=0.
        let idx = f.idx(0, 1, 1);
        assert_eq!(f.data()[idx], -1.0);
    }

    #[test]
    fn face_len_matches_pack_len() {
        let f = Field::new(&sub(), Centering::Zone);
        for axis in 0..3 {
            assert_eq!(f.face_len(axis, 1), f.pack_face(axis, Side::Low, 1).len());
        }
    }
}
