//! Rank-local subdomains.

use crate::grid::GlobalGrid;

/// A rank's owned box of zones `[lo, hi)` within the global grid, plus
/// a ghost layer of `ghost` zones on every side (clipped at physical
/// boundaries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Subdomain {
    /// Inclusive lower zone corner (global indices).
    pub lo: [usize; 3],
    /// Exclusive upper zone corner (global indices).
    pub hi: [usize; 3],
    /// Ghost-layer width in zones.
    pub ghost: usize,
}

impl Subdomain {
    pub fn new(lo: [usize; 3], hi: [usize; 3], ghost: usize) -> Self {
        assert!(
            lo.iter().zip(&hi).all(|(l, h)| l < h),
            "subdomain must be non-empty: lo {lo:?}, hi {hi:?}"
        );
        Subdomain { lo, hi, ghost }
    }

    /// Owned extent along `axis`.
    pub fn extent(&self, axis: usize) -> usize {
        self.hi[axis] - self.lo[axis]
    }

    /// Owned extents (nx, ny, nz).
    pub fn extents(&self) -> [usize; 3] {
        [self.extent(0), self.extent(1), self.extent(2)]
    }

    /// Number of owned zones.
    pub fn zones(&self) -> u64 {
        self.extents().iter().map(|&e| e as u64).product()
    }

    /// Number of owned nodes (zones + 1 in each dimension).
    pub fn nodes(&self) -> u64 {
        self.extents().iter().map(|&e| e as u64 + 1).product()
    }

    /// Surface area in zone faces (halo volume per unit ghost width).
    pub fn surface(&self) -> u64 {
        let [ex, ey, ez] = self.extents().map(|e| e as u64);
        2 * (ex * ey + ey * ez + ex * ez)
    }

    /// True if this box shares a face with `other`: they are adjacent
    /// along exactly one axis and overlap in the two transverse axes.
    pub fn is_face_neighbor(&self, other: &Subdomain) -> bool {
        let mut touching_axis = None;
        for axis in 0..3 {
            if self.hi[axis] == other.lo[axis] || other.hi[axis] == self.lo[axis] {
                if touching_axis.is_some() {
                    // Touching along two axes = edge contact only.
                    return false;
                }
                touching_axis = Some(axis);
            } else if self.hi[axis] <= other.lo[axis] || other.hi[axis] <= self.lo[axis] {
                // Separated along this axis.
                return false;
            }
        }
        touching_axis.is_some()
    }

    /// The number of shared zone faces with a face neighbor (the halo
    /// message size per field per unit ghost width). Zero if not a face
    /// neighbor.
    pub fn shared_face_area(&self, other: &Subdomain) -> u64 {
        if !self.is_face_neighbor(other) {
            return 0;
        }
        let mut area = 1u64;
        for axis in 0..3 {
            if self.hi[axis] == other.lo[axis] || other.hi[axis] == self.lo[axis] {
                continue; // the touching axis contributes no extent
            }
            let lo = self.lo[axis].max(other.lo[axis]);
            let hi = self.hi[axis].min(other.hi[axis]);
            area *= (hi - lo) as u64;
        }
        area
    }

    /// True if the subdomain touches the global boundary on `axis` in
    /// direction `dir` (−1/+1).
    pub fn on_boundary(&self, grid: &GlobalGrid, axis: usize, dir: i32) -> bool {
        let n = [grid.nx, grid.ny, grid.nz][axis];
        if dir < 0 {
            self.lo[axis] == 0
        } else {
            self.hi[axis] == n
        }
    }

    /// Split this subdomain into `parts` pieces along `axis` with
    /// near-equal thickness (remainder spread over the leading pieces).
    pub fn split_along(&self, axis: usize, parts: usize) -> Vec<Subdomain> {
        assert!(parts > 0);
        let n = self.extent(axis);
        assert!(
            parts <= n,
            "cannot split extent {n} into {parts} non-empty parts"
        );
        let base = n / parts;
        let extra = n % parts;
        let mut out = Vec::with_capacity(parts);
        let mut cursor = self.lo[axis];
        for p in 0..parts {
            let thickness = base + usize::from(p < extra);
            let mut lo = self.lo;
            let mut hi = self.hi;
            lo[axis] = cursor;
            hi[axis] = cursor + thickness;
            cursor += thickness;
            out.push(Subdomain::new(lo, hi, self.ghost));
        }
        debug_assert_eq!(cursor, self.hi[axis]);
        out
    }

    /// If `self` and `other` tile a single box exactly — adjacent
    /// along one axis with identical extents on the other two — return
    /// that box (the inverse of [`Subdomain::carve_high`] /
    /// [`Subdomain::split_along`]). Used by the rank-loss foldback to
    /// absorb a lost slab into a neighbor without fragmenting the
    /// decomposition.
    pub fn merged_box(&self, other: &Subdomain) -> Option<Subdomain> {
        for axis in 0..3 {
            let transverse_equal = (0..3)
                .filter(|&a| a != axis)
                .all(|a| self.lo[a] == other.lo[a] && self.hi[a] == other.hi[a]);
            if !transverse_equal {
                continue;
            }
            if self.hi[axis] == other.lo[axis] {
                return Some(Subdomain::new(self.lo, other.hi, self.ghost));
            }
            if other.hi[axis] == self.lo[axis] {
                return Some(Subdomain::new(other.lo, self.hi, self.ghost));
            }
        }
        None
    }

    /// Carve a slab of `thickness` zones off the high end of `axis`,
    /// returning `(remainder, slab)`. `thickness` must leave a
    /// non-empty remainder.
    pub fn carve_high(&self, axis: usize, thickness: usize) -> (Subdomain, Subdomain) {
        assert!(
            thickness > 0 && thickness < self.extent(axis),
            "carve thickness {thickness} must be in 1..{}",
            self.extent(axis)
        );
        let mut rem_hi = self.hi;
        rem_hi[axis] -= thickness;
        let mut slab_lo = self.lo;
        slab_lo[axis] = rem_hi[axis];
        (
            Subdomain::new(self.lo, rem_hi, self.ghost),
            Subdomain::new(slab_lo, self.hi, self.ghost),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dom(lo: [usize; 3], hi: [usize; 3]) -> Subdomain {
        Subdomain::new(lo, hi, 1)
    }

    #[test]
    fn zone_and_node_counts() {
        let d = dom([0, 0, 0], [10, 20, 30]);
        assert_eq!(d.zones(), 6000);
        assert_eq!(d.nodes(), 11 * 21 * 31);
        assert_eq!(d.extents(), [10, 20, 30]);
    }

    #[test]
    fn surface_of_a_cube() {
        let d = dom([0, 0, 0], [4, 4, 4]);
        assert_eq!(d.surface(), 6 * 16);
    }

    #[test]
    fn face_neighbors_detected() {
        let a = dom([0, 0, 0], [4, 4, 4]);
        let b = dom([4, 0, 0], [8, 4, 4]);
        assert!(a.is_face_neighbor(&b));
        assert!(b.is_face_neighbor(&a));
        assert_eq!(a.shared_face_area(&b), 16);
    }

    #[test]
    fn diagonal_and_distant_boxes_are_not_face_neighbors() {
        let a = dom([0, 0, 0], [4, 4, 4]);
        let edge = dom([4, 4, 0], [8, 8, 4]); // touches along x AND y
        let far = dom([8, 0, 0], [12, 4, 4]);
        assert!(!a.is_face_neighbor(&edge));
        assert!(!a.is_face_neighbor(&far));
        assert_eq!(a.shared_face_area(&edge), 0);
    }

    #[test]
    fn partial_overlap_counts_only_shared_area() {
        let a = dom([0, 0, 0], [4, 4, 4]);
        let b = dom([4, 2, 0], [8, 6, 4]); // overlaps y in [2,4)
        assert!(a.is_face_neighbor(&b));
        assert_eq!(a.shared_face_area(&b), 2 * 4);
    }

    #[test]
    fn boundary_detection() {
        let g = GlobalGrid::new(8, 8, 8);
        let d = dom([0, 0, 4], [4, 8, 8]);
        assert!(d.on_boundary(&g, 0, -1));
        assert!(!d.on_boundary(&g, 0, 1));
        assert!(d.on_boundary(&g, 1, -1));
        assert!(d.on_boundary(&g, 1, 1));
        assert!(d.on_boundary(&g, 2, 1));
        assert!(!d.on_boundary(&g, 2, -1));
    }

    #[test]
    fn split_covers_exactly_with_remainder() {
        let d = dom([0, 0, 0], [10, 4, 4]);
        let parts = d.split_along(0, 3);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].extent(0), 4); // 10 = 4 + 3 + 3
        assert_eq!(parts[1].extent(0), 3);
        assert_eq!(parts[2].extent(0), 3);
        assert_eq!(parts[0].lo[0], 0);
        assert_eq!(parts[2].hi[0], 10);
        let total: u64 = parts.iter().map(Subdomain::zones).sum();
        assert_eq!(total, d.zones());
    }

    #[test]
    #[should_panic(expected = "non-empty parts")]
    fn oversplitting_panics() {
        let d = dom([0, 0, 0], [2, 4, 4]);
        let _ = d.split_along(0, 3);
    }

    #[test]
    fn merged_box_inverts_carve_and_split() {
        let d = dom([0, 0, 0], [4, 10, 4]);
        let (rem, slab) = d.carve_high(1, 3);
        assert_eq!(rem.merged_box(&slab), Some(d));
        assert_eq!(slab.merged_box(&rem), Some(d));
        let parts = slab.split_along(1, 3);
        assert_eq!(
            parts[0].merged_box(&parts[1]).unwrap().zones(),
            parts[0].zones() + parts[1].zones()
        );
        // Non-adjacent pieces don't merge; neither do boxes with
        // mismatched transverse extents.
        assert_eq!(parts[0].merged_box(&parts[2]), None);
        let offset = dom([1, 0, 0], [4, 3, 4]);
        assert_eq!(offset.merged_box(&dom([0, 3, 0], [4, 6, 4])), None);
    }

    #[test]
    fn carve_high_splits_cleanly() {
        let d = dom([0, 0, 0], [4, 10, 4]);
        let (rem, slab) = d.carve_high(1, 2);
        assert_eq!(rem.extents(), [4, 8, 4]);
        assert_eq!(slab.extents(), [4, 2, 4]);
        assert_eq!(slab.lo[1], 8);
        assert!(rem.is_face_neighbor(&slab));
        assert_eq!(rem.zones() + slab.zones(), d.zones());
    }

    #[test]
    #[should_panic(expected = "carve thickness")]
    fn carving_everything_panics() {
        let d = dom([0, 0, 0], [4, 4, 4]);
        let _ = d.carve_high(1, 4);
    }
}
