//! Halo-exchange plans.
//!
//! A [`HaloPlan`] enumerates every face-adjacent pair of domains in a
//! decomposition together with the shared rectangle, from which both
//! the *cost* side (message bytes, neighbor counts — the paper's
//! Figure 9 discussion) and the *functional* side (which box to pack
//! and where to unpack it) of the exchange are derived.

use crate::decomp::Decomposition;
use crate::domain::Subdomain;

/// One face-adjacency between two ranks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exchange {
    /// Lower-coordinate rank along `axis`.
    pub a: usize,
    /// Higher-coordinate rank along `axis`.
    pub b: usize,
    /// The axis perpendicular to the shared face.
    pub axis: usize,
    /// Global coordinate of the shared plane (zone index on `b`'s low
    /// side, equal to `a.hi[axis]`).
    pub plane: usize,
    /// Inclusive lower corner of the shared rectangle in the two
    /// transverse axes (the `axis` entry repeats `plane`).
    pub lo: [usize; 3],
    /// Exclusive upper corner of the shared rectangle.
    pub hi: [usize; 3],
}

impl Exchange {
    /// Shared area in zone faces.
    pub fn area(&self) -> u64 {
        let mut area = 1u64;
        for ax in 0..3 {
            if ax != self.axis {
                area *= (self.hi[ax] - self.lo[ax]) as u64;
            }
        }
        area
    }

    /// Message bytes for one f64 field with ghost width `w`.
    pub fn bytes(&self, ghost: usize) -> u64 {
        self.area() * ghost as u64 * 8
    }
}

/// All exchanges of a decomposition plus per-rank summaries.
#[derive(Debug, Clone)]
pub struct HaloPlan {
    exchanges: Vec<Exchange>,
    /// Per-rank indices into `exchanges`.
    by_rank: Vec<Vec<usize>>,
}

impl HaloPlan {
    /// Enumerate face adjacencies (O(n²) pairs — fine at node scale).
    pub fn build(decomp: &Decomposition) -> Self {
        let n = decomp.len();
        let mut exchanges = Vec::new();
        let mut by_rank = vec![Vec::new(); n];
        for i in 0..n {
            for j in (i + 1)..n {
                let (da, db) = (&decomp.domains[i], &decomp.domains[j]);
                if let Some(ex) = face_exchange(i, j, da, db) {
                    by_rank[ex.a].push(exchanges.len());
                    by_rank[ex.b].push(exchanges.len());
                    exchanges.push(ex);
                }
            }
        }
        HaloPlan { exchanges, by_rank }
    }

    pub fn exchanges(&self) -> &[Exchange] {
        &self.exchanges
    }

    /// The exchanges rank `r` participates in.
    pub fn exchanges_for(&self, r: usize) -> impl Iterator<Item = &Exchange> {
        self.by_rank[r].iter().map(|&i| &self.exchanges[i])
    }

    /// Like [`HaloPlan::exchanges_for`], also yielding each exchange's
    /// global index (stable across ranks — used for message tags).
    pub fn exchanges_for_indexed(&self, r: usize) -> impl Iterator<Item = (usize, &Exchange)> {
        self.by_rank[r].iter().map(|&i| (i, &self.exchanges[i]))
    }

    /// Number of halo neighbors of rank `r`.
    pub fn neighbor_count(&self, r: usize) -> usize {
        self.by_rank[r].len()
    }

    /// Total shared area rank `r` communicates (both directions count
    /// once).
    pub fn area_for(&self, r: usize) -> u64 {
        self.exchanges_for(r).map(Exchange::area).sum()
    }

    /// Total shared area over all exchanges.
    pub fn total_area(&self) -> u64 {
        self.exchanges.iter().map(Exchange::area).sum()
    }

    /// Largest per-rank neighbor count (the paper's Figure 9 metric).
    pub fn max_neighbors(&self) -> usize {
        self.by_rank.iter().map(Vec::len).max().unwrap_or(0)
    }
}

/// The shared face between two boxes, if they are face neighbors.
fn face_exchange(i: usize, j: usize, da: &Subdomain, db: &Subdomain) -> Option<Exchange> {
    if !da.is_face_neighbor(db) {
        return None;
    }
    for axis in 0..3 {
        let (a, b, low_box, _high_box) = if da.hi[axis] == db.lo[axis] {
            (i, j, da, db)
        } else if db.hi[axis] == da.lo[axis] {
            (j, i, db, da)
        } else {
            continue;
        };
        let plane = low_box.hi[axis];
        let mut lo = [0; 3];
        let mut hi = [0; 3];
        for ax in 0..3 {
            if ax == axis {
                lo[ax] = plane;
                hi[ax] = plane;
            } else {
                lo[ax] = da.lo[ax].max(db.lo[ax]);
                hi[ax] = da.hi[ax].min(db.hi[ax]);
            }
        }
        return Some(Exchange {
            a,
            b,
            axis,
            plane,
            lo,
            hi,
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomp::block::block_decomp;
    use crate::decomp::weighted::{weighted_hetero_decomp, WeightedConfig};
    use crate::grid::GlobalGrid;

    #[test]
    fn two_block_plan_has_one_exchange() {
        let grid = GlobalGrid::new(8, 4, 4);
        let d = block_decomp(grid, 2, 1);
        let p = HaloPlan::build(&d);
        assert_eq!(p.exchanges().len(), 1);
        let ex = &p.exchanges()[0];
        assert_eq!(ex.area(), 16);
        assert_eq!(ex.bytes(1), 16 * 8);
        assert_eq!(ex.bytes(2), 16 * 16);
        assert_eq!(p.neighbor_count(0), 1);
        assert_eq!(p.neighbor_count(1), 1);
    }

    #[test]
    fn exchange_orientation_is_low_to_high() {
        let grid = GlobalGrid::new(8, 4, 4);
        let d = block_decomp(grid, 2, 1);
        let p = HaloPlan::build(&d);
        let ex = &p.exchanges()[0];
        // Rank with the lower x coordinate must be `a`.
        assert!(d.domains[ex.a].lo[ex.axis] < d.domains[ex.b].lo[ex.axis]);
        assert_eq!(ex.plane, d.domains[ex.a].hi[ex.axis]);
    }

    #[test]
    fn figure9_sixteen_ranks_communicate_more_than_four() {
        // The paper's Figure 9 observation: per-node halo volume and
        // neighbor counts grow sharply from 4 to 16 'square' ranks.
        let grid = GlobalGrid::new(128, 128, 128);
        let d4 = block_decomp(grid, 4, 1);
        let d16 = block_decomp(grid, 16, 1);
        let p4 = HaloPlan::build(&d4);
        let p16 = HaloPlan::build(&d16);
        assert!(p16.total_area() > p4.total_area());
        assert!(p16.max_neighbors() > p4.max_neighbors());
    }

    #[test]
    fn weighted_decomp_connects_cpu_slabs_to_gpu_blocks() {
        let grid = GlobalGrid::new(320, 480, 160);
        let d = weighted_hetero_decomp(grid, &WeightedConfig::rzhasgpu(0.02)).unwrap();
        let p = HaloPlan::build(&d);
        // Every CPU rank has at least one neighbor, and at least one of
        // them is its stack (GPU-side or adjacent slab).
        for &r in &d.cpu_ranks() {
            assert!(p.neighbor_count(r) >= 1, "cpu rank {r} isolated");
        }
        // Every GPU rank talks to at least one CPU slab.
        for &g in &d.gpu_ranks() {
            let touches_cpu = p
                .exchanges_for(g)
                .any(|ex| !d.owners[if ex.a == g { ex.b } else { ex.a }].is_gpu());
            assert!(touches_cpu, "gpu rank {g} has no CPU neighbor");
        }
    }

    #[test]
    fn plan_total_area_counts_each_face_once() {
        let grid = GlobalGrid::new(4, 4, 8);
        let d = block_decomp(grid, 2, 1);
        let p = HaloPlan::build(&d);
        assert_eq!(p.total_area(), 16);
        assert_eq!(p.area_for(0), 16);
        assert_eq!(p.area_for(1), 16);
    }

    #[test]
    fn single_rank_has_no_exchanges() {
        let grid = GlobalGrid::new(4, 4, 4);
        let d = block_decomp(grid, 1, 1);
        let p = HaloPlan::build(&d);
        assert!(p.exchanges().is_empty());
        assert_eq!(p.max_neighbors(), 0);
    }
}
