//! Decomposition quality metrics.
//!
//! These quantify the §6.1 trade-offs: load imbalance, surface-to-
//! volume, and communication volume per rank.

use crate::decomp::Decomposition;
use crate::domain::Subdomain;
use crate::halo::HaloPlan;

/// Summary statistics for a decomposition.
#[derive(Debug, Clone, PartialEq)]
pub struct DecompMetrics {
    /// Ranks in the decomposition.
    pub ranks: usize,
    /// Largest domain zones / mean domain zones (1.0 = perfect).
    pub imbalance: f64,
    /// Mean surface/volume over domains (lower = chunkier domains).
    pub mean_surface_to_volume: f64,
    /// Total halo area (zone faces), each shared face counted once.
    pub total_halo_area: u64,
    /// Largest per-rank neighbor count.
    pub max_neighbors: usize,
    /// Largest per-rank halo area.
    pub max_rank_halo_area: u64,
}

/// Compute metrics for a decomposition (builds a halo plan).
pub fn measure(decomp: &Decomposition) -> DecompMetrics {
    let plan = HaloPlan::build(decomp);
    measure_with_plan(decomp, &plan)
}

/// Compute metrics reusing an existing halo plan.
pub fn measure_with_plan(decomp: &Decomposition, plan: &HaloPlan) -> DecompMetrics {
    let n = decomp.len();
    let zones: Vec<u64> = decomp.domains.iter().map(Subdomain::zones).collect();
    let mean = zones.iter().sum::<u64>() as f64 / n.max(1) as f64;
    let max = zones.iter().copied().max().unwrap_or(0);
    let s2v = decomp
        .domains
        .iter()
        .map(|d| d.surface() as f64 / d.zones() as f64)
        .sum::<f64>()
        / n.max(1) as f64;
    DecompMetrics {
        ranks: n,
        imbalance: if mean > 0.0 { max as f64 / mean } else { 1.0 },
        mean_surface_to_volume: s2v,
        total_halo_area: plan.total_area(),
        max_neighbors: plan.max_neighbors(),
        max_rank_halo_area: (0..n).map(|r| plan.area_for(r)).max().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomp::block::block_decomp;
    use crate::decomp::hierarchical::hierarchical_decomp;
    use crate::grid::GlobalGrid;

    #[test]
    fn balanced_blocks_have_unit_imbalance() {
        let grid = GlobalGrid::new(64, 64, 64);
        let m = measure(&block_decomp(grid, 8, 1));
        assert_eq!(m.ranks, 8);
        assert!((m.imbalance - 1.0).abs() < 1e-12);
        assert!(m.max_neighbors >= 3);
    }

    #[test]
    fn more_ranks_mean_more_surface() {
        let grid = GlobalGrid::new(128, 128, 128);
        let m4 = measure(&block_decomp(grid, 4, 1));
        let m16 = measure(&block_decomp(grid, 16, 1));
        assert!(m16.total_halo_area > m4.total_halo_area);
        assert!(m16.mean_surface_to_volume > m4.mean_surface_to_volume);
    }

    #[test]
    fn hierarchical_beats_square_on_max_neighbors(/* Fig 10 rationale */) {
        let grid = GlobalGrid::new(128, 128, 128);
        let hier = hierarchical_decomp(grid, 4, 4, 2, 1).unwrap();
        let square = block_decomp(grid, 16, 1);
        let mh = measure(&hier);
        let ms = measure(&square);
        assert!(mh.max_neighbors <= ms.max_neighbors);
    }

    #[test]
    fn elongated_domains_have_worse_surface_to_volume() {
        // 1D slab decomposition of a cube vs near-cubic blocks.
        let grid = GlobalGrid::new(64, 64, 64);
        let slabs = block_decomp(GlobalGrid::new(64, 64, 64), 13, 1); // 13 is prime: slabs
        let cubes = block_decomp(grid, 8, 1);
        let msl = measure(&slabs);
        let mcu = measure(&cubes);
        assert!(msl.mean_surface_to_volume > mcu.mean_surface_to_volume);
    }
}
