//! Multi-variable structure-of-arrays storage for one subdomain.
//!
//! A [`SoaBlock`] packs `nvar` zone-centered variables into a single
//! contiguous `f64` slab, var-major: variable `v`'s core+ghost box
//! occupies `data[v*var_len .. (v+1)*var_len]`, x fastest inside the
//! box. Cache-blocked kernels can then walk all variables of a tile
//! while it is resident in cache, and per-variable views (`var`,
//! `var_mut`) recover the classic one-field-at-a-time API.
//!
//! Per-variable geometry (pack/unpack/reflect/fill/sum) delegates to
//! the same free functions as [`Field`](crate::field::Field), so halo
//! messages and boundary mirrors are bit-identical between the two
//! layouts.

use crate::domain::Subdomain;
use crate::field::{self, Side};

/// `nvar` zone-centered variables over one subdomain, in one slab.
#[derive(Debug, Clone)]
pub struct SoaBlock {
    data: Vec<f64>,
    /// Core (owned) extents of each variable's box, excluding ghosts.
    core: [usize; 3],
    ghost: usize,
    nvar: usize,
    /// Allocated length of one variable's box.
    var_len: usize,
}

impl SoaBlock {
    /// Allocate a zero-filled slab of `nvar` zone-centered variables
    /// for `sub`.
    pub fn new(sub: &Subdomain, nvar: usize) -> Self {
        let core = [sub.extent(0), sub.extent(1), sub.extent(2)];
        let g = sub.ghost;
        let var_len = (core[0] + 2 * g) * (core[1] + 2 * g) * (core[2] + 2 * g);
        SoaBlock {
            data: vec![0.0; nvar * var_len],
            core,
            ghost: g,
            nvar,
            var_len,
        }
    }

    pub fn nvar(&self) -> usize {
        self.nvar
    }

    pub fn ghost(&self) -> usize {
        self.ghost
    }

    /// Allocated length of one variable's box.
    pub fn var_len(&self) -> usize {
        self.var_len
    }

    /// Total allocated extents of one variable's box (core + 2·ghost).
    pub fn dims(&self) -> [usize; 3] {
        field::dims_of(self.core, self.ghost)
    }

    /// Core (owned) extents.
    pub fn core(&self) -> [usize; 3] {
        self.core
    }

    /// Strides (x, y, z) within one variable's box, x fastest.
    pub fn strides(&self) -> [usize; 3] {
        field::strides_of(self.core, self.ghost)
    }

    /// Linear index within one variable's box, in allocated
    /// coordinates (ghosts addressable).
    #[inline]
    pub fn idx(&self, i: usize, j: usize, k: usize) -> usize {
        field::idx_in(self.core, self.ghost, i, j, k)
    }

    /// Linear index within one variable's box, in owned coordinates.
    #[inline]
    pub fn idx_owned(&self, i: usize, j: usize, k: usize) -> usize {
        field::idx_owned_in(self.core, self.ghost, i, j, k)
    }

    /// Variable `v`'s box as a read-only slice.
    #[inline]
    pub fn var(&self, v: usize) -> &[f64] {
        &self.data[v * self.var_len..(v + 1) * self.var_len]
    }

    /// Variable `v`'s box as a mutable slice.
    #[inline]
    pub fn var_mut(&mut self, v: usize) -> &mut [f64] {
        &mut self.data[v * self.var_len..(v + 1) * self.var_len]
    }

    /// Value of variable `v` at owned coordinates.
    #[inline]
    pub fn get(&self, v: usize, i: usize, j: usize, k: usize) -> f64 {
        self.var(v)[self.idx_owned(i, j, k)]
    }

    /// Set variable `v` at owned coordinates.
    #[inline]
    pub fn set(&mut self, v: usize, i: usize, j: usize, k: usize, val: f64) {
        let idx = self.idx_owned(i, j, k);
        self.var_mut(v)[idx] = val;
    }

    /// All `N` variables' boxes as disjoint mutable slices, in
    /// variable order (`N` must equal `nvar`). Lets multi-output
    /// kernels write several variables of one slab at once.
    pub fn vars_mut<const N: usize>(&mut self) -> [&mut [f64]; N] {
        assert_eq!(N, self.nvar, "vars_mut::<{N}> on a {}-var slab", self.nvar);
        let mut chunks = self.data.chunks_mut(self.var_len);
        std::array::from_fn(|_| chunks.next().expect("nvar chunks"))
    }

    /// The whole slab (all variables, var-major).
    pub fn slab(&self) -> &[f64] {
        &self.data
    }

    /// The whole slab, mutable (tile kernels carve disjoint rows out
    /// of this).
    pub fn slab_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Copy every variable (including ghosts) from `src`.
    pub fn copy_from(&mut self, src: &SoaBlock) {
        assert_eq!(self.data.len(), src.data.len(), "slab shape mismatch");
        self.data.copy_from_slice(&src.data);
    }

    /// Fill every entry of variable `v` (including ghosts).
    pub fn fill(&mut self, v: usize, val: f64) {
        self.var_mut(v).fill(val);
    }

    /// Fill owned entries of variable `v` only.
    pub fn fill_owned(&mut self, v: usize, val: f64) {
        let (core, g) = (self.core, self.ghost);
        field::fill_owned_in(core, g, self.var_mut(v), val);
    }

    /// Sum of variable `v`'s owned entries (conservation checks).
    pub fn sum_owned(&self, v: usize) -> f64 {
        field::sum_owned_in(self.core, self.ghost, self.var(v))
    }

    /// Number of f64 values in one face strip of `width` layers.
    pub fn face_len(&self, axis: usize, width: usize) -> usize {
        field::face_len_of(self.core, axis, width)
    }

    /// Pack variable `v`'s outermost `width` owned layers on `side` of
    /// `axis` (k, j, i ascending — same wire format as
    /// [`Field::pack_face`](crate::field::Field::pack_face)).
    pub fn pack_face(&self, v: usize, axis: usize, side: Side, width: usize) -> Vec<f64> {
        field::pack_face_in(self.core, self.ghost, self.var(v), axis, side, width)
    }

    /// Unpack a neighbor's face buffer into variable `v`'s ghost
    /// layers on `side` of `axis`.
    pub fn unpack_ghost(&mut self, v: usize, axis: usize, side: Side, width: usize, buf: &[f64]) {
        let (core, g) = (self.core, self.ghost);
        field::unpack_ghost_in(core, g, self.var_mut(v), axis, side, width, buf);
    }

    /// Pack an arbitrary box `[lo, hi)` of variable `v` in allocated
    /// coordinates.
    pub fn pack_box(&self, v: usize, lo: [usize; 3], hi: [usize; 3]) -> Vec<f64> {
        field::pack_box_in(self.core, self.ghost, self.var(v), lo, hi)
    }

    /// Unpack a buffer into the box `[lo, hi)` of variable `v`.
    pub fn unpack_box(&mut self, v: usize, lo: [usize; 3], hi: [usize; 3], buf: &[f64]) {
        let (core, g) = (self.core, self.ghost);
        field::unpack_box_in(core, g, self.var_mut(v), lo, hi, buf);
    }

    /// Mirror variable `v`'s owned boundary layer into its ghost layer
    /// on a physical boundary.
    pub fn reflect_into_ghost(&mut self, v: usize, axis: usize, side: Side, sign: f64) {
        let (core, g) = (self.core, self.ghost);
        field::reflect_into_ghost_in(core, g, self.var_mut(v), axis, side, sign);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::{Centering, Field};

    fn sub() -> Subdomain {
        Subdomain::new([0, 0, 0], [4, 3, 2], 1)
    }

    #[test]
    fn slab_shape_is_var_major() {
        let b = SoaBlock::new(&sub(), 5);
        assert_eq!(b.nvar(), 5);
        assert_eq!(b.core(), [4, 3, 2]);
        assert_eq!(b.dims(), [6, 5, 4]);
        assert_eq!(b.var_len(), 6 * 5 * 4);
        assert_eq!(b.slab().len(), 5 * 6 * 5 * 4);
        assert_eq!(b.strides(), [1, 6, 30]);
        for v in 0..5 {
            assert_eq!(b.var(v).len(), b.var_len());
        }
    }

    #[test]
    fn get_set_roundtrip_does_not_leak_across_vars() {
        let mut b = SoaBlock::new(&sub(), 5);
        b.set(2, 1, 2, 1, 7.5);
        assert_eq!(b.get(2, 1, 2, 1), 7.5);
        for v in [0, 1, 3, 4] {
            assert_eq!(b.get(v, 1, 2, 1), 0.0, "var {v} contaminated");
        }
    }

    #[test]
    fn geometry_matches_field_exactly() {
        // Same tagged payload through a Field and a SoaBlock variable:
        // every shared geometry op must agree bit for bit.
        let s = sub();
        let mut f = Field::new(&s, Centering::Zone);
        let mut b = SoaBlock::new(&s, 3);
        for k in 0..2 {
            for j in 0..3 {
                for i in 0..4 {
                    let tag = (i as f64) + 10.0 * (j as f64) + 100.0 * (k as f64) + 0.25;
                    f.set(i, j, k, tag);
                    b.set(1, i, j, k, tag);
                }
            }
        }
        assert_eq!(f.sum_owned().to_bits(), b.sum_owned(1).to_bits());
        for axis in 0..3 {
            assert_eq!(f.face_len(axis, 1), b.face_len(axis, 1));
            for side in [Side::Low, Side::High] {
                assert_eq!(f.pack_face(axis, side, 1), b.pack_face(1, axis, side, 1));
            }
        }
        f.reflect_into_ghost(1, Side::High, -1.0);
        b.reflect_into_ghost(1, 1, Side::High, -1.0);
        assert_eq!(f.data(), b.var(1));
        let lo = [0, 1, 1];
        let hi = [6, 4, 3];
        assert_eq!(f.pack_box(lo, hi), b.pack_box(1, lo, hi));
    }

    #[test]
    fn pack_unpack_ghost_roundtrip() {
        let mut a = SoaBlock::new(&sub(), 2);
        let mut c = SoaBlock::new(&Subdomain::new([4, 0, 0], [8, 3, 2], 1), 2);
        for k in 0..2 {
            for j in 0..3 {
                a.set(0, 3, j, k, (10 * j + 100 * k + 3) as f64);
            }
        }
        let msg = a.pack_face(0, 0, Side::High, 1);
        c.unpack_ghost(0, 0, Side::Low, 1, &msg);
        for k in 0..2 {
            for j in 0..3 {
                let idx = c.idx(0, j + 1, k + 1);
                assert_eq!(c.var(0)[idx], a.get(0, 3, j, k));
            }
        }
    }

    #[test]
    fn vars_mut_splits_disjointly() {
        let mut b = SoaBlock::new(&sub(), 3);
        let [a, c, d] = b.vars_mut();
        a.fill(1.0);
        c.fill(2.0);
        d.fill(3.0);
        assert!(b.var(0).iter().all(|&v| v == 1.0));
        assert!(b.var(1).iter().all(|&v| v == 2.0));
        assert!(b.var(2).iter().all(|&v| v == 3.0));
    }

    #[test]
    fn copy_from_duplicates_the_whole_slab() {
        let mut a = SoaBlock::new(&sub(), 2);
        let mut b = SoaBlock::new(&sub(), 2);
        a.fill(0, 3.0);
        a.fill(1, -1.5);
        b.copy_from(&a);
        assert_eq!(a.slab(), b.slab());
    }

    #[test]
    fn fill_owned_leaves_ghosts_alone() {
        let mut b = SoaBlock::new(&sub(), 2);
        b.fill(0, -1.0);
        b.fill_owned(0, 2.0);
        assert_eq!(b.get(0, 0, 0, 0), 2.0);
        assert_eq!(b.var(0)[0], -1.0);
        assert_eq!(b.sum_owned(0), 2.0 * (4 * 3 * 2) as f64);
    }
}
