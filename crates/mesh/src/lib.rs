//! # hsim-mesh
//!
//! 3D block-structured mesh infrastructure for the hydro mini-app and
//! the cooperative runner: global grids, rank-local subdomains with
//! ghost layers, zone/node-centered fields, the paper's three domain
//! decompositions, and halo-exchange plans.
//!
//! Decompositions (paper §6.1, Figures 9–10):
//!
//! * [`decomp::block`] — the traditional near-cubic decomposition
//!   ("'square' domains", Figure 9). Good surface-to-volume, but the
//!   neighbor count and communication volume grow quickly with rank
//!   count on a single node.
//! * [`decomp::hierarchical`] — the paper's two-level scheme (Figure
//!   10b): first one near-cubic block per GPU, then each block
//!   subdivided along a *single* dimension for the extra MPI ranks,
//!   which keeps the halo neighbor count minimal.
//! * [`decomp::weighted`] — the heterogeneous scheme (Figure 10c): one
//!   block per GPU with thin y-slabs carved off for the CPU ranks, slab
//!   thickness set by the load balancer subject to a one-plane minimum
//!   granularity.

#![forbid(unsafe_code)]

pub mod decomp;
pub mod domain;
pub mod field;
pub mod grid;
pub mod halo;
pub mod metrics;
pub mod soa;

pub use decomp::{Decomposition, OwnerKind};
pub use domain::Subdomain;
pub use field::{Centering, Field, Side};
pub use grid::GlobalGrid;
pub use halo::{Exchange, HaloPlan};
pub use soa::SoaBlock;
