//! Deep-analysis fixtures: each bad tree must produce exactly the
//! expected findings *including* the rendered blame path, so the
//! root → … → site evidence chain is pinned — a finding is an
//! argument, not an assertion. The nondet fixture is deliberately
//! cross-crate (source in `hsim-raja`, sink in `hsim-telemetry`,
//! linked by a `use`) to pin the call graph's cross-crate edges.

use std::path::PathBuf;

use hsim_tidy::check_dir;

/// Scan one fixture tree, returning (lint, path, line, msg) sorted as
/// the report sorts them.
fn scan(name: &str) -> Vec<(String, String, usize, String)> {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    check_dir(&root)
        .expect("fixture scans")
        .violations
        .into_iter()
        .map(|f| (f.lint.to_string(), f.path, f.line, f.msg))
        .collect()
}

fn expect(name: &str, want: &[(&str, &str, usize, &str)]) {
    let got = scan(name);
    let want: Vec<(String, String, usize, String)> = want
        .iter()
        .map(|(l, p, n, m)| (l.to_string(), p.to_string(), *n, m.to_string()))
        .collect();
    assert_eq!(got, want, "fixture `{name}` findings mismatch");
}

#[test]
fn panic_reach_pins_the_blame_chain() {
    expect(
        "bad/deep_panic",
        &[(
            "panic-reach",
            "crates/core/src/runner.rs",
            12,
            "`.unwrap()` can panic and is reachable from a no-panic root — return a \
             typed error instead; blame path:\n\
             \x20 World::run_fallible (crates/core/src/runner.rs:4)\n\
             \x20 -> step_ranks (called at crates/core/src/runner.rs:5)",
        )],
    );
}

#[test]
fn nondet_taint_crosses_crates_via_use_imports() {
    let stats = "crates/raja/src/stats.rs";
    let sink_hop = "\x20 to_metrics_json (crates/telemetry/src/sink.rs:3)\n\
                    \x20 -> occupancy_counts (called at crates/telemetry/src/sink.rs:4)";
    let tag_hop = format!("{sink_hop}\n\x20 -> worker_tag (called at {stats}:7)");
    expect(
        "bad/deep_nondet",
        &[
            (
                "nondet-taint",
                stats,
                6,
                &format!(
                    "iteration order of unordered `by_stream` (`.keys()`) is reachable \
                     from a deterministic emission sink — outputs must be byte-identical \
                     run to run (sort, use BTree collections, or route through \
                     RegionSlots); blame path:\n{sink_hop}"
                ),
            ),
            (
                "nondet-taint",
                stats,
                12,
                &format!(
                    "thread identity is reachable from a deterministic emission sink — \
                     outputs must be byte-identical run to run (sort, use BTree \
                     collections, or route through RegionSlots); blame path:\n{tag_hop}"
                ),
            ),
            (
                "nondet-taint",
                stats,
                14,
                &format!(
                    "a pointer observed as an integer is reachable from a deterministic \
                     emission sink — outputs must be byte-identical run to run (sort, \
                     use BTree collections, or route through RegionSlots); blame \
                     path:\n{tag_hop}"
                ),
            ),
        ],
    );
}

#[test]
fn cost_charge_flags_free_primitives_and_dropped_costs() {
    expect(
        "bad/deep_cost",
        &[
            (
                "cost-charge",
                "crates/core/src/step.rs",
                2,
                "`diffuse_tick` calls cost primitive `launch` but neither charges a \
                 virtual clock on any path nor returns the SimDuration to its caller — \
                 the modelled cost is silently dropped",
            ),
            (
                "cost-charge",
                "crates/mpisim/src/comm.rs",
                2,
                "communication primitive `Comm::send` never charges the virtual clock \
                 (no `charge`/`wait_until`/`merge` on any path through it)",
            ),
            (
                "cost-charge",
                "crates/mpisim/src/comm.rs",
                12,
                "`Comm::recv` returns successfully before its first virtual-clock \
                 charge — this control-flow path models the operation as free (guard \
                 it on a degenerate size, or charge first)",
            ),
        ],
    );
}
