use std::thread;

#[test]
fn spawn_in_test_targets_is_exempt() {
    let h = thread::spawn(|| 2 + 2);
    assert_eq!(h.join().unwrap(), 4);
}
