pub fn sweep(exec: &mut Exec, tiles: &TileSet2, u: &[f64], out: &mut [f64]) {
    let n = 8;
    exec.run_tiles(tiles, |tile| {
        for j in tile.j0..tile.j1 {
            let row = &u[j * n..(j + 1) * n];
            let mut guard = claim(out, j);
            let tgt = &mut guard[..];
            for (t, r) in tgt.iter_mut().zip(&row[..n]) {
                *t = *r * 0.5;
            }
            let _tail = &row[1..];
        }
    });
}

pub fn outside_run_tiles_may_index(u: &[f64]) -> f64 {
    u[0] + u[1]
}

pub fn masses(exec: &mut Exec, tiles: &TileSet2, rho: &[f64]) -> Vec<f64> {
    let n = 8;
    exec.run_tiles_collect(tiles, |tile| {
        let mut acc = 0.0;
        for j in tile.j0..tile.j1 {
            let row = &rho[j * n..(j + 1) * n];
            for r in row.iter() {
                acc += *r;
            }
        }
        acc
    })
}
