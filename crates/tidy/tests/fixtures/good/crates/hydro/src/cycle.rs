use std::time::Instant; // tidy-allow: wall-clock -- fixture: sanctioned wall-clock import

pub struct Probe;

impl Probe {
    // tidy-allow: wall-clock -- fixture: reads the host clock by design
    pub fn stamp() -> Instant { Instant::now() }
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_exempt() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
    }
}
