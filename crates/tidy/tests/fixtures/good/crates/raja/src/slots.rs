use std::cell::UnsafeCell;

pub struct Slot(UnsafeCell<u64>);

// SAFETY: the pool's claim protocol guarantees a single writer per slot.
unsafe impl Sync for Slot {}

impl Slot {
    pub fn set(&self, v: u64) {
        // SAFETY: the caller holds the unique claim on this slot.
        unsafe { *self.0.get() = v };
    }
}
