pub struct World;

impl World {
    pub fn run_fallible(&self) -> Result<u64, String> {
        step_ranks().ok_or_else(|| "empty rank list".to_string())
    }
}

fn step_ranks() -> Option<u64> {
    let v: Vec<u64> = vec![1];
    v.first().copied()
}
