use std::collections::BTreeMap;

pub fn to_metrics_json() -> String {
    let mut by_stream: BTreeMap<u64, u64> = BTreeMap::new();
    by_stream.insert(0, 1);
    let keys: Vec<u64> = by_stream.keys().copied().collect();
    format!("{keys:?}")
}
