pub enum Counter {
    FaultsInjected,
    KernelLaunches,
    ServeHits,
    ServeQueueDepth,
    BalanceResplits,
}

impl Counter {
    pub fn label(&self) -> &'static str {
        match self {
            Counter::FaultsInjected => "fault_injected",
            Counter::KernelLaunches => "kernel_launches",
            Counter::ServeHits => "serve_hits",
            Counter::ServeQueueDepth => "serve_queue_depth",
            Counter::BalanceResplits => "balance_resplits",
        }
    }
}

pub fn rank_span(_cat: u32, _name: &str, _t0: u64, _t1: u64) {}

pub fn spans() {
    rank_span(0, "fault_inject", 0, 1);
    rank_span(0, "serve_request", 0, 1);
    rank_span(0, "serving", 0, 1);
    rank_span(0, "balance_resplit", 0, 1);
    rank_span(0, "balancing", 0, 1);
}
