pub struct SimClock;

impl SimClock {
    pub fn charge(&mut self, _cost: u64) {}
}

pub struct Comm {
    clock: SimClock,
    size: usize,
}

impl Comm {
    pub fn send(&mut self, bytes: u64) -> Result<(), ()> {
        self.clock.charge(bytes);
        Ok(())
    }

    pub fn recv(&mut self, bytes: u64) -> Result<u64, ()> {
        if self.size == 1 {
            return Ok(0);
        }
        self.clock.charge(bytes);
        Ok(bytes)
    }
}
