pub fn diffuse_tick(dev: &mut Gpu, elems: u64) -> u64 {
    let cost = dev.launch(elems);
    elems + cost.as_nanos()
}
