impl Comm {
    pub fn send(&mut self, bytes: u64) -> Result<(), ()> {
        self.log(bytes);
        Ok(())
    }

    pub fn recv(&mut self, bytes: u64) -> Result<u64, ()> {
        if bytes == 0 {
            return Ok(0);
        }
        if self.ready {
            return Ok(bytes);
        }
        self.clock.charge(bytes);
        Ok(bytes)
    }

    fn log(&self, _bytes: u64) {}
}
