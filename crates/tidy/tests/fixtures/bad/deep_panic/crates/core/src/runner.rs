pub struct World;

impl World {
    pub fn run_fallible(&self) -> Result<(), String> {
        step_ranks();
        Ok(())
    }
}

fn step_ranks() {
    let v: Vec<u64> = vec![1];
    let first = v.first().unwrap();
    let _ = first;
}
