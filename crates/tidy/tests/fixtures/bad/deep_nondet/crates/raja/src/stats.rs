use std::collections::HashMap;

pub fn occupancy_counts() -> Vec<u64> {
    let mut by_stream: HashMap<u64, u64> = HashMap::new();
    by_stream.insert(0, 1);
    let mut out: Vec<u64> = by_stream.keys().copied().collect();
    out.push(worker_tag());
    out
}

fn worker_tag() -> u64 {
    let _id = std::thread::current();
    let buf = [0u8; 1];
    (buf.as_ptr() as usize) as u64
}
