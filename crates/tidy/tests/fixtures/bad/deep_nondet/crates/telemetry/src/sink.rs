use hsim_raja::stats::occupancy_counts;

pub fn to_metrics_json() -> String {
    let counts = occupancy_counts();
    format!("{counts:?}")
}
