pub fn restart(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn fail() {
    panic!("boom");
}
