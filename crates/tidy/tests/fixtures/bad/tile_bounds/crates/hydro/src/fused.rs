pub fn sweep(exec: &mut Exec, tiles: &TileSet2, u: &[f64], out: &mut [f64]) {
    let n = 8;
    exec.run_tiles(tiles, |tile| {
        for j in tile.j0..tile.j1 {
            let row = &u[j * n..(j + 1) * n];
            let mut tgt = claim(out, j);
            for i in 0..n {
                tgt[i] = row[i] * 0.5;
            }
        }
    });
}

pub fn outside_is_fine(u: &[f64]) -> f64 {
    u[0] + u[1]
}
