pub fn sweep(exec: &mut Exec, tiles: &TileSet2, u: &[f64], out: &mut [f64]) {
    let n = 8;
    exec.run_tiles(tiles, |tile| {
        for j in tile.j0..tile.j1 {
            let row = &u[j * n..(j + 1) * n];
            let mut tgt = claim(out, j);
            for i in 0..n {
                tgt[i] = row[i] * 0.5;
            }
        }
    });
}

pub fn outside_is_fine(u: &[f64]) -> f64 {
    u[0] + u[1]
}

pub fn masses(exec: &mut Exec, tiles: &TileSet2, rho: &[f64]) -> Vec<f64> {
    let n = 8;
    exec.run_tiles_collect(tiles, |tile| {
        let peek = |j: usize| rho[j * n];
        let mut acc = 0.0;
        for j in tile.j0..tile.j1 {
            acc += peek(j) + rho[j * n + 1];
        }
        acc
    })
}
