// tidy-allow: wall-clock
// tidy-allow: no-such-lint -- misspelled lint name
// tidy-allow: stray-thread -- nothing on this line needs it

pub fn noop() {}
