use std::collections::HashMap;

pub fn emit(rows: &HashMap<String, u64>) -> String {
    let mut out = String::new();
    for (k, v) in rows {
        out.push_str(&format!("{k},{v}\n"));
    }
    out
}
