use std::thread;

pub fn run() -> i32 {
    let h = thread::spawn(|| 42);
    h.join().unwrap_or(0)
}
