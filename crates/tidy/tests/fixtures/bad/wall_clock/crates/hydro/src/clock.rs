use std::time::Instant;

pub fn now_ms() -> u128 {
    Instant::now().elapsed().as_millis()
}
