pub enum Counter {
    FaultsInjected,
    KernelLaunches,
    ServeHits,
    BalanceResplits,
}

impl Counter {
    pub fn label(&self) -> &'static str {
        match self {
            Counter::FaultsInjected => "faults",
            Counter::KernelLaunches => "KernelLaunches",
            Counter::ServeHits => "hits",
            Counter::BalanceResplits => "resplits",
        }
    }
}

pub fn rank_span(_cat: u32, _name: &str, _t0: u64, _t1: u64) {}

pub fn spans() {
    rank_span(0, "BadSpan", 0, 1);
    rank_span(0, "faultinject", 0, 1);
    rank_span(0, "servehit", 0, 1);
    rank_span(0, "balancestep", 0, 1);
}
