pub fn read(p: *const u32) -> u32 {
    // SAFETY: fixture — the caller promises `p` is valid and aligned.
    unsafe { *p }
}
