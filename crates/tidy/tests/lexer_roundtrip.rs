//! Round-trip exactness over the real workspace: for every `.rs`
//! file, `lex(render(lex(src)))` must reproduce the exact
//! (kind, text) token stream. This is the contract the parser and
//! every token lint stand on — raw strings, raw identifiers, nested
//! block comments, escaped char literals and signed float exponents
//! all have to survive a lex → render → lex cycle unchanged.

use std::fs;
use std::path::{Path, PathBuf};

use hsim_tidy::lexer::{lex, render, Lexed, TokKind};

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in fs::read_dir(dir).expect("readable dir") {
        let path = entry.expect("dir entry").path();
        let name = path
            .file_name()
            .unwrap_or_default()
            .to_string_lossy()
            .to_string();
        if path.is_dir() {
            if name == "target" || name == "vendor" || name.starts_with('.') {
                continue;
            }
            walk(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

fn pairs(l: &Lexed) -> Vec<(TokKind, String)> {
    l.toks.iter().map(|t| (t.kind, t.text.clone())).collect()
}

/// Every file in the workspace — the tidy fixtures included, since
/// deliberately-bad inputs still have to lex faithfully.
#[test]
fn every_workspace_file_round_trips() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut files = Vec::new();
    walk(&root, &mut files);
    files.sort();
    assert!(
        files.len() > 100,
        "workspace walk looks truncated: {} files",
        files.len()
    );
    for path in files {
        let Ok(src) = fs::read_to_string(&path) else {
            continue; // non-UTF-8: the scanner skips these too
        };
        let a = lex(&src);
        let b = lex(&render(&a));
        assert_eq!(
            pairs(&a),
            pairs(&b),
            "lex∘render∘lex mismatch in {}",
            path.display()
        );
    }
}

/// The tricky constructs, pinned directly so a failure names the
/// construct rather than a workspace file that happens to use it.
#[test]
fn exotic_constructs_round_trip() {
    let cases = [
        "let s = r#\"quote \" hash # quote-hash \"# inside\"#;",
        "let s = r##\"r#\"nested\"#\"##;",
        "let b = br#\"bytes \" here\"#;",
        "fn r#type(r#fn: u32) -> u32 { r#fn }",
        "/* outer /* inner /* deepest */ */ */ fn live() {}",
        "let c = '\\''; let d = '\\n'; let l: &'static str = \"x\";",
        "let f = 1.5e-3 + 2E+4; let h = 0xAE; let r = 0..10;",
        "let s = \"escaped \\\" quote and \\\\ slash\";",
    ];
    for src in cases {
        let a = lex(src);
        let b = lex(&render(&a));
        assert_eq!(pairs(&a), pairs(&b), "mismatch for case: {src}");
    }
}
