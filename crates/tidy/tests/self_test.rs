//! Fixture-based self-tests: each bad fixture must produce exactly
//! the expected (lint, path, line) set, the good fixture must be
//! silent, and the live workspace must scan clean.

use std::path::PathBuf;

use hsim_tidy::check_dir;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Scan one fixture and return its findings as (lint, path, line).
fn scan(name: &str) -> Vec<(String, String, usize)> {
    let report = check_dir(&fixture(name)).expect("fixture scans");
    report
        .violations
        .into_iter()
        .map(|f| (f.lint.to_string(), f.path, f.line))
        .collect()
}

fn expect(name: &str, want: &[(&str, &str, usize)]) {
    let got = scan(name);
    let want: Vec<(String, String, usize)> = want
        .iter()
        .map(|(l, p, n)| (l.to_string(), p.to_string(), *n))
        .collect();
    assert_eq!(got, want, "fixture `{name}` findings mismatch");
}

#[test]
fn wall_clock_fixture_is_flagged() {
    expect(
        "bad/wall_clock",
        &[
            ("wall-clock", "crates/hydro/src/clock.rs", 1),
            ("wall-clock", "crates/hydro/src/clock.rs", 4),
        ],
    );
}

#[test]
fn unordered_iter_fixture_is_flagged() {
    expect(
        "bad/unordered",
        &[
            ("unordered-iter", "crates/telemetry/src/trace.rs", 1),
            ("unordered-iter", "crates/telemetry/src/trace.rs", 3),
        ],
    );
}

#[test]
fn safety_comment_fixture_is_flagged() {
    expect(
        "bad/safety",
        &[("safety-comment", "crates/raja/src/slots.rs", 7)],
    );
}

#[test]
fn stray_thread_fixture_is_flagged() {
    expect(
        "bad/threads",
        &[("stray-thread", "crates/core/src/sweep.rs", 4)],
    );
}

#[test]
fn telemetry_naming_fixture_is_flagged() {
    expect(
        "bad/naming",
        &[
            ("telemetry-naming", "crates/telemetry/src/metrics.rs", 11),
            ("telemetry-naming", "crates/telemetry/src/metrics.rs", 12),
            ("telemetry-naming", "crates/telemetry/src/metrics.rs", 13),
            ("telemetry-naming", "crates/telemetry/src/metrics.rs", 14),
            ("telemetry-naming", "crates/telemetry/src/metrics.rs", 22),
            ("telemetry-naming", "crates/telemetry/src/metrics.rs", 23),
            ("telemetry-naming", "crates/telemetry/src/metrics.rs", 24),
            ("telemetry-naming", "crates/telemetry/src/metrics.rs", 25),
        ],
    );
}

#[test]
fn tile_bounds_fixture_is_flagged() {
    // Only the per-element `tgt[i]`/`row[i]` accesses inside the
    // run_tiles body and the `rho[...]` accesses inside the
    // run_tiles_collect body (one smuggled through a captured closure)
    // are findings; the range re-borrows and the indexing outside the
    // kernel calls are fine.
    expect(
        "bad/tile_bounds",
        &[
            ("tile-bounds", "crates/hydro/src/fused.rs", 8),
            ("tile-bounds", "crates/hydro/src/fused.rs", 8),
            ("tile-bounds", "crates/hydro/src/fused.rs", 21),
            ("tile-bounds", "crates/hydro/src/fused.rs", 24),
        ],
    );
}

#[test]
fn allow_directive_misuse_is_flagged() {
    expect(
        "bad/allows",
        &[
            ("bad-allow", "crates/hydro/src/cycle.rs", 1),
            ("bad-allow", "crates/hydro/src/cycle.rs", 2),
            ("unused-allow", "crates/hydro/src/cycle.rs", 3),
        ],
    );
}

#[test]
fn pure_crate_without_forbid_is_flagged() {
    expect("bad/hygiene_pure", &[("unsafe-crate", "src/lib.rs", 1)]);
}

#[test]
fn unsafe_crate_without_deny_coverage_is_flagged() {
    expect(
        "bad/hygiene_unsafe",
        &[
            ("unsafe-crate", "Cargo.toml", 1),
            ("unsafe-crate", "src/lib.rs", 1),
        ],
    );
}

#[test]
fn good_fixture_is_silent() {
    let got = scan("good");
    assert!(got.is_empty(), "good fixture produced findings: {got:?}");
    // And the scan actually visited the files (allows were honored,
    // not the whole tree skipped).
    let report = check_dir(&fixture("good")).expect("fixture scans");
    assert_eq!(report.files_scanned, 10);
}

#[test]
fn live_workspace_scans_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = check_dir(&root).expect("workspace scans");
    let msgs: Vec<String> = report.violations.iter().map(|v| v.to_string()).collect();
    assert!(
        msgs.is_empty(),
        "live workspace has tidy violations:\n{}",
        msgs.join("\n")
    );
    assert!(
        report.files_scanned > 100,
        "workspace scan looks truncated: {} files",
        report.files_scanned
    );
}
