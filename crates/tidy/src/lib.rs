//! hsim-tidy: the workspace invariant linter.
//!
//! A rustc-tidy-style checker built on a tiny pure-`std` lexer — no
//! external dependencies, fully offline. It enforces the invariants
//! the simulator's correctness story rests on but the compiler cannot
//! see:
//!
//! - **wall-clock** — virtual-time purity: `Instant`/`SystemTime`
//!   only in the host-perf allowlist (`crates/bench/`, the pool's
//!   region timer).
//! - **unordered-iter** — no `HashMap`/`HashSet` in trace/metrics/
//!   report/CSV emission paths (byte-identical output).
//! - **safety-comment** — every `unsafe` carries an adjacent
//!   `// SAFETY:` comment.
//! - **unsafe-crate** — crates without `unsafe` must
//!   `#![forbid(unsafe_code)]`; crates with it must opt into the
//!   workspace `unsafe_op_in_unsafe_fn = "deny"` table.
//! - **stray-thread** — `thread::spawn` only inside `raja::pool`.
//! - **telemetry-naming** — counter labels and span names follow the
//!   `fault_*`/`host_*`/snake_case conventions.
//!
//! On top of the token lints, a recursive-descent parser
//! ([`parser`]) and a workspace call graph ([`callgraph`]) drive
//! three interprocedural analyses ([`deep`]), each reporting blame
//! paths (root → … → site with file:line per hop):
//!
//! - **panic-reach** — no `unwrap`/`expect`/`panic!`/unguarded serve
//!   index reachable from `World::run_fallible`, `run_online`, any
//!   `Coupler` impl, or the serve request path.
//! - **nondet-taint** — no nondeterminism source (unordered-container
//!   iteration, unsanctioned wall-clock reads, thread identity,
//!   pointer-as-integer casts) reachable from a deterministic
//!   emission sink (trace/metrics/CSV/Prometheus writers,
//!   `content_hash`, `RunResult` construction).
//! - **cost-charge** — every mpisim communication primitive charges
//!   the virtual clock on all completing paths, and every caller of a
//!   cost-returning gpusim primitive either charges or passes the
//!   `SimDuration` upward.
//!
//! Suppression is inline and audited: a comment of the form
//! `"tidy-allow: <lint> -- <reason>"` (at the start of the comment)
//! silences that lint on its own line and the next one. A malformed
//! or unknown directive is itself a violation (**bad-allow**), and a
//! directive that suppresses nothing is flagged (**unused-allow**),
//! so allowlist entries cannot rot silently.

#![forbid(unsafe_code)]

pub mod callgraph;
pub mod deep;
pub mod lexer;
pub mod lints;
pub mod parser;

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One violation: which lint, where, and why it matters.
#[derive(Debug, Clone)]
pub struct Finding {
    pub lint: &'static str,
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    pub msg: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.lint, self.msg
        )
    }
}

/// The result of a full workspace scan.
#[derive(Debug, Default)]
pub struct Report {
    /// Violations sorted by (path, line, lint) for stable output.
    pub violations: Vec<Finding>,
    /// `.rs` files and `Cargo.toml`s examined.
    pub files_scanned: usize,
}

/// Directories never descended into. `fixtures` keeps tidy's own
/// deliberately-bad test inputs out of the live scan.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "fixtures", "node_modules"];

/// Path fragments marking test/bench/example targets, which are
/// exempt from the runtime-invariant lints.
fn is_test_path(rel: &str) -> bool {
    rel.starts_with("tests/")
        || rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.contains("/examples/")
}

/// Scan the workspace rooted at `root` and report every violation:
/// the per-file token lints, the call-graph deep analyses
/// (panic-reach / nondet-taint / cost-charge), and crate hygiene.
pub fn check_dir(root: &Path) -> io::Result<Report> {
    let mut rs_files = Vec::new();
    let mut tomls = Vec::new();
    walk(root, &mut rs_files, &mut tomls)?;
    rs_files.sort();
    tomls.sort();

    let mut report = Report {
        files_scanned: rs_files.len() + tomls.len(),
        ..Report::default()
    };

    let crates = crate_idents(root, &tomls);

    // Per-file state kept until the deep analyses have run, so that
    // their findings route through the same tidy-allow machinery as
    // the token lints.
    let mut lexed_files: Vec<(String, lexer::Lexed)> = Vec::new();
    let mut raw_by_file: Vec<Vec<Finding>> = Vec::new();
    let mut parsed: Vec<(String, parser::ParsedFile)> = Vec::new();
    let mut infos: std::collections::BTreeMap<String, deep::FileInfo> =
        std::collections::BTreeMap::new();

    for path in &rs_files {
        let rel = rel_path(root, path);
        let Ok(src) = fs::read_to_string(path) else {
            continue; // non-UTF-8 or vanished mid-scan: nothing to lint
        };
        let lexed = lexer::lex(&src);
        let mask = if is_test_path(&rel) {
            vec![true; lexed.toks.len()]
        } else {
            lexer::test_mask(&lexed.toks)
        };

        let ctx = lints::FileCtx {
            rel: &rel,
            lexed: &lexed,
            is_test: &mask,
        };
        let mut raw = Vec::new();
        lints::run_all(&ctx, &mut raw);

        if !is_test_path(&rel) {
            let (crate_ident, module) = crate_ctx(&rel, &crates);
            let pf = parser::parse_file(&rel, &crate_ident, &module, &lexed, &mask);
            let sanctioned_wall_clock = lexed
                .comments
                .iter()
                .filter(|c| {
                    c.text
                        .trim()
                        .strip_prefix("tidy-allow:")
                        .is_some_and(|r| r.trim_start().starts_with("wall-clock"))
                })
                .map(|c| c.line)
                .collect();
            infos.insert(
                rel.clone(),
                deep::FileInfo {
                    unordered_names: pf.unordered_names.clone(),
                    sanctioned_wall_clock,
                },
            );
            parsed.push((rel.clone(), pf));
        }

        raw_by_file.push(raw);
        lexed_files.push((rel, lexed));
    }

    // Build the workspace call graph and run the deep analyses, then
    // merge their findings into the owning file's raw list so inline
    // `tidy-allow` directives (and unused-allow auditing) apply.
    let ws = deep::Workspace {
        graph: callgraph::Graph::build(&parsed),
        files: infos,
    };
    let mut deep_raw = Vec::new();
    deep::run_all(&ws, &mut deep_raw);
    for f in deep_raw {
        match lexed_files.iter().position(|(rel, _)| *rel == f.path) {
            Some(i) => raw_by_file[i].push(f),
            None => report.violations.push(f),
        }
    }

    for (i, (rel, lexed)) in lexed_files.iter().enumerate() {
        apply_allows(
            rel,
            lexed,
            std::mem::take(&mut raw_by_file[i]),
            &mut report.violations,
        );
    }

    check_crate_hygiene(root, &tomls, &lexed_files, &mut report.violations);

    report
        .violations
        .sort_by(|a, b| (&a.path, a.line, a.lint).cmp(&(&b.path, b.line, b.lint)));
    Ok(report)
}

/// Map each package directory to its crate identifier (`name` with
/// `-` → `_`), longest directory first so nested crates win over the
/// workspace root.
fn crate_idents(root: &Path, tomls: &[PathBuf]) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for toml in tomls {
        let Ok(text) = fs::read_to_string(toml) else {
            continue;
        };
        let mut in_package = false;
        let mut name = None;
        for line in text.lines() {
            let line = line.trim();
            if line.starts_with('[') {
                in_package = line == "[package]";
                continue;
            }
            if in_package {
                if let Some(rest) = line.strip_prefix("name") {
                    if let Some(val) = rest.trim_start().strip_prefix('=') {
                        name = Some(val.trim().trim_matches('"').replace('-', "_"));
                    }
                }
            }
        }
        if let Some(name) = name {
            let dir = rel_path(root, toml.parent().unwrap_or(root));
            out.push((dir, name));
        }
    }
    out.sort_by(|a, b| b.0.len().cmp(&a.0.len()).then(a.0.cmp(&b.0)));
    out
}

/// Crate ident and in-crate module path for one source file. Files
/// outside any discovered package share the `unknown` crate, which
/// keeps same-crate resolution working in manifest-less fixture trees.
fn crate_ctx(rel: &str, crates: &[(String, String)]) -> (String, Vec<String>) {
    for (dir, ident) in crates {
        let prefix = if dir.is_empty() {
            String::new()
        } else {
            format!("{dir}/")
        };
        if rel.starts_with(&prefix) {
            let module = rel[prefix.len()..]
                .strip_prefix("src/")
                .map(parser::module_path_of)
                .unwrap_or_default();
            return (ident.clone(), module);
        }
    }
    ("unknown".to_string(), Vec::new())
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn walk(dir: &Path, rs: &mut Vec<PathBuf>, tomls: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(&path, rs, tomls)?;
        } else if name == "Cargo.toml" {
            tomls.push(path);
        } else if name.ends_with(".rs") {
            rs.push(path);
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// tidy-allow resolution
// ---------------------------------------------------------------------------

struct Allow {
    line: usize,
    lint: String,
    used: bool,
}

/// Lints that may be targeted by an allow directive: the real passes,
/// not the meta-lints about directives themselves.
fn allowable(lint: &str) -> bool {
    lints::LINTS
        .iter()
        .any(|(n, _)| *n == lint && *n != "bad-allow" && *n != "unused-allow")
}

/// Parse directives out of the comment table, suppress matching
/// findings, and emit bad-allow / unused-allow for the rest.
fn apply_allows(rel: &str, lexed: &lexer::Lexed, raw: Vec<Finding>, out: &mut Vec<Finding>) {
    let mut allows: Vec<Allow> = Vec::new();
    for c in &lexed.comments {
        let text = c.text.trim();
        let Some(rest) = text.strip_prefix("tidy-allow:") else {
            continue;
        };
        match rest.split_once("--") {
            Some((lint, reason)) => {
                let lint = lint.trim();
                let reason = reason.trim();
                if !allowable(lint) {
                    out.push(Finding {
                        lint: "bad-allow",
                        path: rel.to_string(),
                        line: c.line,
                        msg: format!("tidy-allow names unknown lint `{lint}`"),
                    });
                } else if reason.is_empty() {
                    out.push(Finding {
                        lint: "bad-allow",
                        path: rel.to_string(),
                        line: c.line,
                        msg: format!("tidy-allow for `{lint}` has an empty reason"),
                    });
                } else {
                    allows.push(Allow {
                        line: c.line,
                        lint: lint.to_string(),
                        used: false,
                    });
                }
            }
            None => out.push(Finding {
                lint: "bad-allow",
                path: rel.to_string(),
                line: c.line,
                msg: "tidy-allow is missing its ` -- <reason>` clause".to_string(),
            }),
        }
    }

    for f in raw {
        let suppressed = allows
            .iter_mut()
            .find(|a| a.lint == f.lint && (a.line == f.line || a.line + 1 == f.line));
        match suppressed {
            Some(a) => a.used = true,
            None => out.push(f),
        }
    }

    for a in allows.iter().filter(|a| !a.used) {
        out.push(Finding {
            lint: "unused-allow",
            path: rel.to_string(),
            line: a.line,
            msg: format!(
                "tidy-allow for `{}` suppresses nothing on this or the next line — remove it",
                a.lint
            ),
        });
    }
}

// ---------------------------------------------------------------------------
// crate-level unsafe hygiene
// ---------------------------------------------------------------------------

/// Enforce the crate-level contract:
/// - every member `Cargo.toml` opts into `[lints] workspace = true`;
/// - a crate whose `src/` has no `unsafe` must `#![forbid(unsafe_code)]`;
/// - a crate that does use `unsafe` must be covered by the workspace
///   `unsafe_op_in_unsafe_fn = "deny"` table (or carry the attr itself).
fn check_crate_hygiene(
    root: &Path,
    tomls: &[PathBuf],
    lexed_files: &[(String, lexer::Lexed)],
    out: &mut Vec<Finding>,
) {
    let workspace_denies_unsafe_op = fs::read_to_string(root.join("Cargo.toml"))
        .map(|t| {
            t.lines()
                .any(|l| l.contains("unsafe_op_in_unsafe_fn") && l.contains("deny"))
        })
        .unwrap_or(false);

    for toml_path in tomls {
        let Ok(text) = fs::read_to_string(toml_path) else {
            continue;
        };
        if !text.contains("[package]") {
            continue; // virtual manifest
        }
        let toml_rel = rel_path(root, toml_path);
        let crate_dir = toml_path.parent().unwrap_or(root);
        let src_prefix = format!(
            "{}src/",
            match rel_path(root, crate_dir).as_str() {
                "" => String::new(),
                d => format!("{d}/"),
            }
        );

        // The crate's lexed sources (lib/bin targets only — benches
        // and tests are separate targets not covered by inner attrs).
        let srcs: Vec<&(String, lexer::Lexed)> = lexed_files
            .iter()
            .filter(|(rel, _)| rel.starts_with(&src_prefix))
            .collect();
        let uses_unsafe = srcs.iter().any(|(_, lx)| {
            lx.toks
                .iter()
                .any(|t| t.kind == lexer::TokKind::Ident && t.text == "unsafe")
        });

        let root_rel = ["lib.rs", "main.rs"]
            .iter()
            .map(|f| format!("{src_prefix}{f}"))
            .find(|r| srcs.iter().any(|(rel, _)| rel == r));
        let Some(root_rel) = root_rel else {
            continue; // no lib/bin root discovered (e.g. bench-only crate)
        };
        let root_lexed = &srcs.iter().find(|(rel, _)| *rel == root_rel).unwrap().1;

        if !has_workspace_lints_optin(&text) {
            out.push(Finding {
                lint: "unsafe-crate",
                path: toml_rel.clone(),
                line: 1,
                msg: "member manifest lacks `[lints] workspace = true` — crate escapes the \
                      workspace deny table"
                    .to_string(),
            });
        }

        if uses_unsafe {
            let covered = (workspace_denies_unsafe_op && has_workspace_lints_optin(&text))
                || has_inner_attr(root_lexed, "deny", "unsafe_op_in_unsafe_fn");
            if !covered {
                out.push(Finding {
                    lint: "unsafe-crate",
                    path: root_rel.clone(),
                    line: 1,
                    msg: "crate uses `unsafe` but is not covered by \
                          `unsafe_op_in_unsafe_fn = \"deny\"` (workspace table or crate attr)"
                        .to_string(),
                });
            }
        } else if !has_inner_attr(root_lexed, "forbid", "unsafe_code") {
            out.push(Finding {
                lint: "unsafe-crate",
                path: root_rel.clone(),
                line: 1,
                msg: "crate has no `unsafe` in src/ — add `#![forbid(unsafe_code)]` to keep \
                      it that way"
                    .to_string(),
            });
        }
    }
}

/// Does the manifest contain a `[lints]` section whose body sets
/// `workspace = true`?
fn has_workspace_lints_optin(toml: &str) -> bool {
    let mut in_lints = false;
    for line in toml.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_lints = line == "[lints]";
            continue;
        }
        if in_lints && line.replace(' ', "") == "workspace=true" {
            return true;
        }
    }
    false
}

/// Does the file carry an inner attribute `#![<outer>(<inner>)]`
/// (matched loosely over tokens: `outer` followed by `(` then `inner`)?
fn has_inner_attr(lexed: &lexer::Lexed, outer: &str, inner: &str) -> bool {
    let toks = &lexed.toks;
    for i in 0..toks.len() {
        if toks[i].kind == lexer::TokKind::Ident
            && toks[i].text == outer
            && i + 2 < toks.len()
            && toks[i + 1].text == "("
            && toks[i + 2].text == inner
        {
            return true;
        }
    }
    false
}
