//! Workspace call graph over the parser's function list.
//!
//! Resolution is name-based and deliberately conservative: an edge is
//! added for every plausible target, so reachability *over*-
//! approximates (analyses may walk edges real control flow never
//! takes) and never silently under-approximates on resolvable names.
//! The rules:
//!
//! - **Method calls** (`recv.name(...)`) resolve to every workspace
//!   method with that name, unless the name is on the
//!   [`OPAQUE_METHODS`] std-collision list. A `self.name(...)` call is
//!   restricted to methods of the same `impl` type or the same trait.
//! - **Unqualified free calls** resolve to free functions with that
//!   name: same file first, then same crate, then through the file's
//!   `use` imports.
//! - **Qualified calls** (`a::b::name(...)`) resolve where the
//!   qualifier matches the candidate's `impl` type, crate ident, or
//!   trailing module segment, with `use` aliases expanded first.
//!
//! Everything is `BTreeMap`-ordered so edge lists, reachability, and
//! blame paths are deterministic run-to-run.

use std::collections::{BTreeMap, VecDeque};

use crate::parser::{Event, FnDef, ParsedFile};

/// Method names that collide with `std` container/iterator/primitive
/// methods. Resolving these by bare name would wire huge bogus fan-out
/// through the graph (`.get()` on a `Vec` is not your workspace
/// `get`), so they never produce edges.
pub const OPAQUE_METHODS: &[&str] = &[
    "abs",
    "and_then",
    "as_bytes",
    "as_mut",
    "as_ref",
    "as_slice",
    "as_str",
    "ceil",
    "chars",
    "checked_sub",
    "clamp",
    "clear",
    "clone",
    "cloned",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "copy_from_slice",
    "count",
    "default",
    "drain",
    "ends_with",
    "entry",
    "enumerate",
    "extend",
    "fill",
    "filter",
    "filter_map",
    "find",
    "find_map",
    "flat_map",
    "flatten",
    "floor",
    "flush",
    "fold",
    "get",
    "get_mut",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "is_err",
    "is_none",
    "is_ok",
    "is_some",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "lines",
    "lock",
    "map",
    "map_err",
    "max",
    "max_by",
    "max_by_key",
    "min",
    "min_by",
    "min_by_key",
    "next",
    "ok",
    "ok_or",
    "ok_or_else",
    "or_default",
    "or_insert",
    "or_insert_with",
    "parse",
    "pop",
    "position",
    "powf",
    "powi",
    "push",
    "push_str",
    "read",
    "remove",
    "replace",
    "reserve",
    "resize",
    "retain",
    "rev",
    "round",
    "saturating_add",
    "saturating_sub",
    "skip",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "split",
    "split_at",
    "split_whitespace",
    "sqrt",
    "starts_with",
    "sum",
    "swap",
    "take",
    "then",
    "to_owned",
    "to_string",
    "to_vec",
    "trim",
    "try_into",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "values",
    "values_mut",
    "windows",
    "with_capacity",
    "wrapping_add",
    "write",
    "zip",
];

/// One resolved call edge: `callee` is an index into [`Graph::fns`],
/// `line` the call site in the caller's file.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    pub callee: usize,
    pub line: usize,
}

/// How a function became reachable in one [`Graph::reach`] walk.
#[derive(Debug, Clone, Copy)]
pub enum Origin {
    Root,
    Via { parent: usize, line: usize },
}

pub struct Graph {
    /// Every non-test function in the workspace.
    pub fns: Vec<FnDef>,
    /// `edges[i]` = resolved callees of `fns[i]`.
    pub edges: Vec<Vec<Edge>>,
}

impl Graph {
    pub fn build(files: &[(String, ParsedFile)]) -> Graph {
        let mut fns: Vec<FnDef> = Vec::new();
        let mut imports_of: BTreeMap<&str, &[(String, Vec<String>)]> = BTreeMap::new();
        for (rel, pf) in files {
            imports_of.insert(rel.as_str(), &pf.imports);
            fns.extend(pf.fns.iter().filter(|f| !f.is_test).cloned());
        }

        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.name.as_str()).or_default().push(i);
        }

        let mut edges: Vec<Vec<Edge>> = vec![Vec::new(); fns.len()];
        for i in 0..fns.len() {
            let caller = &fns[i];
            let imports = imports_of.get(caller.file.as_str()).copied().unwrap_or(&[]);
            for ev in &caller.events {
                let Event::Call {
                    path,
                    method,
                    receiver,
                    line,
                } = ev
                else {
                    continue;
                };
                for callee in resolve(
                    caller,
                    path,
                    *method,
                    receiver.as_deref(),
                    &fns,
                    &by_name,
                    imports,
                ) {
                    if !edges[i]
                        .iter()
                        .any(|e| e.callee == callee && e.line == *line)
                    {
                        edges[i].push(Edge {
                            callee,
                            line: *line,
                        });
                    }
                }
            }
        }
        Graph { fns, edges }
    }

    /// Resolve the call event `ev` made from `fns[caller]` — used by
    /// analyses that need per-site resolution (not just reachability).
    pub fn resolve_at(&self, caller: usize, ev: &Event) -> Vec<usize> {
        let Event::Call { line, .. } = ev else {
            return Vec::new();
        };
        self.edges[caller]
            .iter()
            .filter(|e| e.line == *line)
            .map(|e| e.callee)
            .collect()
    }

    /// BFS from `roots`; returns per-fn origin (None = unreachable).
    /// Shortest chains win, so blame paths stay minimal.
    pub fn reach(&self, roots: &[usize]) -> Vec<Option<Origin>> {
        let mut origin: Vec<Option<Origin>> = vec![None; self.fns.len()];
        let mut q = VecDeque::new();
        for &r in roots {
            if origin[r].is_none() {
                origin[r] = Some(Origin::Root);
                q.push_back(r);
            }
        }
        while let Some(u) = q.pop_front() {
            for e in &self.edges[u] {
                if origin[e.callee].is_none() {
                    origin[e.callee] = Some(Origin::Via {
                        parent: u,
                        line: e.line,
                    });
                    q.push_back(e.callee);
                }
            }
        }
        origin
    }

    /// Which functions can (transitively) reach one whose index is
    /// marked in `targets`? Computed by BFS over reversed edges.
    pub fn reaches(&self, targets: &[bool]) -> Vec<bool> {
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); self.fns.len()];
        for (u, es) in self.edges.iter().enumerate() {
            for e in es {
                rev[e.callee].push(u);
            }
        }
        let mut hit = targets.to_vec();
        let mut q: VecDeque<usize> = (0..hit.len()).filter(|&i| hit[i]).collect();
        while let Some(u) = q.pop_front() {
            for &p in &rev[u] {
                if !hit[p] {
                    hit[p] = true;
                    q.push_back(p);
                }
            }
        }
        hit
    }

    /// `Type::name` / `Trait::name` / `name` for diagnostics.
    pub fn qual_name(&self, i: usize) -> String {
        let f = &self.fns[i];
        match (&f.self_ty, &f.trait_name) {
            (Some(t), _) => format!("{t}::{}", f.name),
            (None, Some(tr)) => format!("{tr}::{}", f.name),
            (None, None) => f.name.clone(),
        }
    }

    /// Render the root → … → `target` chain of a [`Graph::reach`]
    /// walk, one hop per line with file:line evidence.
    pub fn blame(&self, origin: &[Option<Origin>], target: usize) -> String {
        let mut chain = Vec::new();
        let mut cur = target;
        loop {
            match origin[cur] {
                Some(Origin::Root) => {
                    chain.push(format!(
                        "  {} ({}:{})",
                        self.qual_name(cur),
                        self.fns[cur].file,
                        self.fns[cur].line
                    ));
                    break;
                }
                Some(Origin::Via { parent, line }) => {
                    chain.push(format!(
                        "  -> {} (called at {}:{})",
                        self.qual_name(cur),
                        self.fns[parent].file,
                        line
                    ));
                    cur = parent;
                }
                None => break, // target unreachable: caller's bug
            }
        }
        chain.reverse();
        chain.join("\n")
    }
}

fn resolve(
    caller: &FnDef,
    path: &[String],
    method: bool,
    receiver: Option<&str>,
    fns: &[FnDef],
    by_name: &BTreeMap<&str, Vec<usize>>,
    imports: &[(String, Vec<String>)],
) -> Vec<usize> {
    let Some(name) = path.last() else {
        return Vec::new();
    };
    let Some(cands) = by_name.get(name.as_str()) else {
        return Vec::new();
    };

    if method {
        if OPAQUE_METHODS.contains(&name.as_str()) {
            return Vec::new();
        }
        let methods: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&c| fns[c].self_ty.is_some() || fns[c].trait_name.is_some())
            .collect();
        if receiver == Some("self") {
            // Same-type (or same-trait) methods only.
            return methods
                .into_iter()
                .filter(|&c| {
                    (caller.self_ty.is_some() && fns[c].self_ty == caller.self_ty)
                        || (caller.trait_name.is_some() && fns[c].trait_name == caller.trait_name)
                })
                .collect();
        }
        return methods;
    }

    if path.len() >= 2 {
        // Qualified call: the qualifier (with `use` aliases expanded)
        // must match impl type, crate ident, or trailing module.
        let qual = &path[path.len() - 2];
        let mut quals: Vec<&str> = vec![qual.as_str()];
        if let Some((_, full)) = imports.iter().find(|(a, _)| a == qual) {
            quals.extend(full.iter().map(String::as_str));
        }
        if path[0] == "crate" || path[0] == "self" || path[0] == "super" {
            quals.push(caller.crate_ident.as_str());
        }
        return cands
            .iter()
            .copied()
            .filter(|&c| {
                let f = &fns[c];
                quals.iter().any(|q| {
                    f.self_ty.as_deref() == Some(*q)
                        || f.crate_ident == *q
                        || f.module.last().map(String::as_str) == Some(*q)
                })
            })
            .collect();
    }

    // Unqualified free call: free fns, same file > same crate > via
    // an explicit `use` import.
    let free: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&c| fns[c].self_ty.is_none() && fns[c].trait_name.is_none())
        .collect();
    let same_file: Vec<usize> = free
        .iter()
        .copied()
        .filter(|&c| fns[c].file == caller.file)
        .collect();
    if !same_file.is_empty() {
        return same_file;
    }
    let same_crate: Vec<usize> = free
        .iter()
        .copied()
        .filter(|&c| fns[c].crate_ident == caller.crate_ident)
        .collect();
    if !same_crate.is_empty() {
        return same_crate;
    }
    if let Some((_, full)) = imports.iter().find(|(a, _)| a == name) {
        let target_crate = full.first().map(String::as_str);
        return free
            .into_iter()
            .filter(|&c| {
                target_crate == Some(fns[c].crate_ident.as_str()) || target_crate == Some("crate")
            })
            .collect();
    }
    Vec::new()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lexer, parser};

    fn build(files: &[(&str, &str, &str)]) -> Graph {
        let parsed: Vec<(String, parser::ParsedFile)> = files
            .iter()
            .map(|(rel, krate, src)| {
                let lx = lexer::lex(src);
                let mask = lexer::test_mask(&lx.toks);
                (
                    rel.to_string(),
                    parser::parse_file(rel, krate, &[], &lx, &mask),
                )
            })
            .collect();
        Graph::build(&parsed)
    }

    fn idx(g: &Graph, name: &str) -> usize {
        g.fns.iter().position(|f| f.name == name).unwrap()
    }

    fn callees(g: &Graph, name: &str) -> Vec<String> {
        let mut v: Vec<String> = g.edges[idx(g, name)]
            .iter()
            .map(|e| g.qual_name(e.callee))
            .collect();
        v.sort();
        v
    }

    #[test]
    fn same_file_free_calls_resolve() {
        let g = build(&[(
            "crates/a/src/lib.rs",
            "a",
            "fn top() { helper(); }\nfn helper() {}",
        )]);
        assert_eq!(callees(&g, "top"), ["helper"]);
    }

    #[test]
    fn cross_crate_calls_resolve_via_use() {
        let g = build(&[
            (
                "crates/a/src/lib.rs",
                "hsim_a",
                "use hsim_b::emit;\nfn top() { emit(); }",
            ),
            ("crates/b/src/lib.rs", "hsim_b", "pub fn emit() {}"),
        ]);
        assert_eq!(callees(&g, "top"), ["emit"]);
    }

    #[test]
    fn qualified_calls_match_type_module_or_crate() {
        let g = build(&[
            (
                "crates/a/src/lib.rs",
                "hsim_a",
                "fn top() { World::boot(); hsim_b::emit(); xfer::cost(); }\nuse hsim_b::xfer;",
            ),
            (
                "crates/b/src/lib.rs",
                "hsim_b",
                "impl World { pub fn boot() {} }\npub fn emit() {}",
            ),
            ("crates/b/src/xfer.rs", "hsim_b", "pub fn cost() {}"),
        ]);
        assert_eq!(callees(&g, "top"), ["World::boot", "cost", "emit"]);
    }

    #[test]
    fn self_method_calls_stay_on_type_and_opaque_names_do_not_edge() {
        let g = build(&[(
            "crates/a/src/lib.rs",
            "a",
            "impl Foo { fn go(&self) { self.step(); self.v.push(1); } fn step(&self) {} }\n\
             impl Bar { fn step(&self) {} fn push(&self, x: u8) {} }",
        )]);
        assert_eq!(callees(&g, "go"), ["Foo::step"]);
    }

    #[test]
    fn open_method_calls_fan_out_to_all_types() {
        let g = build(&[(
            "crates/a/src/lib.rs",
            "a",
            "fn top(c: &C) { c.step(); }\nimpl Foo { fn step(&self) {} }\nimpl Bar { fn step(&self) {} }",
        )]);
        assert_eq!(callees(&g, "top"), ["Bar::step", "Foo::step"]);
    }

    #[test]
    fn reach_and_blame_produce_shortest_chain() {
        let g = build(&[(
            "crates/a/src/lib.rs",
            "a",
            "fn root() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}",
        )]);
        let origin = g.reach(&[idx(&g, "root")]);
        let leaf = idx(&g, "leaf");
        assert!(origin[leaf].is_some());
        let blame = g.blame(&origin, leaf);
        assert_eq!(
            blame,
            "  root (crates/a/src/lib.rs:1)\n\
             \x20 -> mid (called at crates/a/src/lib.rs:1)\n\
             \x20 -> leaf (called at crates/a/src/lib.rs:2)"
        );
    }

    #[test]
    fn reverse_reachability_marks_callers() {
        let g = build(&[(
            "crates/a/src/lib.rs",
            "a",
            "fn root() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}\nfn lonely() {}",
        )]);
        let mut targets = vec![false; g.fns.len()];
        targets[idx(&g, "leaf")] = true;
        let hit = g.reaches(&targets);
        assert!(hit[idx(&g, "root")] && hit[idx(&g, "mid")] && hit[idx(&g, "leaf")]);
        assert!(!hit[idx(&g, "lonely")]);
    }

    #[test]
    fn test_fns_are_excluded_from_the_graph() {
        let g = build(&[(
            "crates/a/src/lib.rs",
            "a",
            "fn live() {}\n#[cfg(test)]\nmod tests { fn helper() {} }",
        )]);
        assert_eq!(g.fns.len(), 1);
        assert_eq!(g.fns[0].name, "live");
    }
}
