//! The lint passes. Each pass walks one file's token stream and
//! reports raw findings; allowlist handling (`// tidy-allow:`) is
//! applied by the driver in `lib.rs`.

use crate::lexer::{Lexed, Tok, TokKind};
use crate::Finding;

/// Lint registry: name and one-line description, used by `--list` and
/// by allow-directive validation.
pub const LINTS: &[(&str, &str)] = &[
    (
        "wall-clock",
        "Instant/SystemTime outside the host-perf allowlist (virtual-time purity)",
    ),
    (
        "panic-reach",
        "unwrap/expect/panic!/unguarded index reachable from a no-panic root (call-graph)",
    ),
    (
        "nondet-taint",
        "nondeterminism source reachable from a deterministic emission sink (call-graph)",
    ),
    (
        "cost-charge",
        "gpusim/mpisim cost site that can skip charging the virtual clock (call-graph)",
    ),
    (
        "unordered-iter",
        "HashMap/HashSet in trace/metrics/report/CSV emission paths (byte-identical output)",
    ),
    (
        "safety-comment",
        "`unsafe` without an adjacent `// SAFETY:` comment",
    ),
    (
        "unsafe-crate",
        "crate-level unsafe hygiene: forbid(unsafe_code) on pure crates, workspace lint opt-in on unsafe crates",
    ),
    (
        "stray-thread",
        "std::thread::spawn outside raja::pool / the serve workers",
    ),
    (
        "telemetry-naming",
        "counter/span names off the fault_*/host_*/serve_*/balance_*/snake_case conventions",
    ),
    (
        "tile-bounds",
        "indexed `[i]` element access inside run_tiles kernel bodies (require slice re-borrows)",
    ),
    (
        "bad-allow",
        "malformed or unknown tidy-allow directive",
    ),
    (
        "unused-allow",
        "tidy-allow directive that suppresses nothing",
    ),
];

/// Files (by workspace-relative path prefix) where wall-clock reads
/// are legitimate: the host-perf harness, the worker-pool region
/// timer (both feed the `host_*` telemetry counters by design), and
/// the serve request-latency recorder behind the `serve_*` p50/p99
/// export — all measure real elapsed time, never a rank's virtual
/// clock.
pub(crate) const WALL_CLOCK_ALLOWED: &[&str] = &[
    "crates/bench/",
    "crates/raja/src/pool.rs",
    "crates/serve/src/server.rs",
];

/// File-name fragments marking trace/metrics/report/CSV emission
/// paths, where unordered-map iteration silently breaks the
/// byte-identical CI diffs.
const EMISSION_FILE_FRAGMENTS: &[&str] = &[
    "trace", "metrics", "report", "chrome", "summary", "figures", "profile", "csv", "plot",
    "registry",
];

/// Where `std::thread::spawn` may appear: the sanctioned worker-thread
/// factories — the raja pool and the long-lived serve workers (whose
/// lifetime is the server's, not a region's, so scoped threads cannot
/// express them).
const THREAD_SPAWN_ALLOWED: &[&str] = &["crates/raja/src/pool.rs", "crates/serve/src/server.rs"];

/// Where the tile-bounds lint applies: the fused cache-blocked hydro
/// kernels, whose inner loops must stay free of per-element indexed
/// access so bounds checks hoist out of the hot x-loops.
const TILE_KERNEL_PATH: &str = "crates/hydro/src/";

/// Context handed to every pass.
pub struct FileCtx<'a> {
    /// Workspace-relative path, `/`-separated.
    pub rel: &'a str,
    pub lexed: &'a Lexed,
    /// Per-token mask: true when the token is inside `#[cfg(test)]` /
    /// `#[test]` items or the file itself is a test/bench target.
    pub is_test: &'a [bool],
}

impl FileCtx<'_> {
    fn toks(&self) -> &[Tok] {
        &self.lexed.toks
    }
}

/// Run every per-file pass.
pub fn run_all(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    wall_clock(ctx, out);
    unordered_iter(ctx, out);
    safety_comment(ctx, out);
    stray_thread(ctx, out);
    telemetry_naming(ctx, out);
    tile_bounds(ctx, out);
}

fn finding(ctx: &FileCtx<'_>, lint: &'static str, line: usize, msg: String) -> Finding {
    Finding {
        lint,
        path: ctx.rel.to_string(),
        line,
        msg,
    }
}

/// Lint: virtual-time purity. Wall clocks must never leak into
/// simulated time; `Instant`/`SystemTime` are confined to the
/// allowlisted host-perf modules.
fn wall_clock(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if WALL_CLOCK_ALLOWED.iter().any(|p| ctx.rel.starts_with(p)) {
        return;
    }
    for (i, t) in ctx.toks().iter().enumerate() {
        if ctx.is_test[i] {
            continue;
        }
        if t.kind == TokKind::Ident && (t.text == "Instant" || t.text == "SystemTime") {
            out.push(finding(
                ctx,
                "wall-clock",
                t.line,
                format!(
                    "`{}` outside the host-perf allowlist: wall clocks must not leak into \
                     simulated time (use SimTime/SimDuration, or move timing into crates/bench)",
                    t.text
                ),
            ));
        }
    }
}

/// Lint: determinism of emission paths — no unordered maps where
/// trace/metrics/report/CSV bytes are produced.
fn unordered_iter(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let name = ctx.rel.rsplit('/').next().unwrap_or(ctx.rel);
    if !EMISSION_FILE_FRAGMENTS.iter().any(|f| name.contains(f)) {
        return;
    }
    let toks = ctx.toks();
    for (i, t) in toks.iter().enumerate() {
        if ctx.is_test[i] || t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "HashMap" || t.text == "HashSet" {
            out.push(finding(
                ctx,
                "unordered-iter",
                t.line,
                format!(
                    "`{}` in an emission path: unordered iteration breaks byte-identical \
                     trace/metrics diffs — use BTreeMap/BTreeSet or sort explicitly",
                    t.text
                ),
            ));
        }
    }
}

/// Lint: every `unsafe` needs an adjacent `// SAFETY:` comment (same
/// line, or in the contiguous comment block directly above; `# Safety`
/// doc sections also satisfy it).
fn safety_comment(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let toks = ctx.toks();
    let mut last_line = 0;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "unsafe" || t.line == last_line {
            continue;
        }
        // `unsafe fn` declarations are exempt: with
        // `unsafe_op_in_unsafe_fn = "deny"` the obligations sit on the
        // inner blocks, which this lint still covers.
        if toks.get(i + 1).is_some_and(|n| n.text == "fn") {
            continue;
        }
        last_line = t.line; // one report per line, however many keywords
        let mut ok = false;
        // Same line, then walk up through the contiguous comment block.
        let mut l = t.line;
        loop {
            if let Some(c) = ctx.lexed.comment_on(l) {
                if c.contains("SAFETY:") || c.contains("# Safety") {
                    ok = true;
                    break;
                }
            } else if l != t.line {
                break; // gap above: comment block ended
            }
            if l == 0 {
                break;
            }
            l -= 1;
        }
        if !ok {
            out.push(finding(
                ctx,
                "safety-comment",
                t.line,
                "`unsafe` without an adjacent `// SAFETY:` comment stating the invariant \
                 that makes it sound"
                    .to_string(),
            ));
        }
    }
}

/// Lint: no stray threads. `std::thread::spawn` is confined to the
/// sanctioned worker-thread factories (the raja pool and the serve
/// workers); everything else must submit regions to a pool.
fn stray_thread(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if THREAD_SPAWN_ALLOWED.iter().any(|p| ctx.rel.starts_with(p)) {
        return;
    }
    let toks = ctx.toks();
    for i in 0..toks.len() {
        if ctx.is_test[i] {
            continue;
        }
        if toks[i].text == "thread"
            && i + 3 < toks.len()
            && toks[i + 1].text == ":"
            && toks[i + 2].text == ":"
            && toks[i + 3].text == "spawn"
        {
            out.push(finding(
                ctx,
                "stray-thread",
                toks[i].line,
                "`thread::spawn` outside raja::pool: submit work to the persistent \
                 WorkPool instead of spawning ad-hoc threads"
                    .to_string(),
            ));
        }
    }
}

/// Lint: telemetry naming. Counter/gauge/time-stat labels must be
/// snake_case with `Host*`/`Fault*`/`Serve*`/`Balance*` variants
/// mapped to `host_*` / `fault_*` / `serve_*` / `balance_*` labels;
/// span names passed to `rank_span` must be snake_case, with
/// `fault…`/`host…`/`serve…`/`balance…` names carrying the
/// underscore.
fn telemetry_naming(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let toks = ctx.toks();

    // (a) Label match arms in the telemetry metrics registry:
    //     `Counter::Variant => "label"`.
    if ctx.rel.contains("telemetry") && ctx.rel.ends_with("metrics.rs") {
        for i in 0..toks.len() {
            if i + 6 >= toks.len() {
                break;
            }
            let e = &toks[i];
            if e.kind != TokKind::Ident
                || !matches!(e.text.as_str(), "Counter" | "Gauge" | "TimeStat")
            {
                continue;
            }
            if toks[i + 1].text != ":" || toks[i + 2].text != ":" {
                continue;
            }
            let variant = &toks[i + 3];
            if variant.kind != TokKind::Ident
                || toks[i + 4].text != "="
                || toks[i + 5].text != ">"
                || toks[i + 6].kind != TokKind::Str
            {
                continue;
            }
            let label = &toks[i + 6];
            if !is_snake_case(&label.text) {
                out.push(finding(
                    ctx,
                    "telemetry-naming",
                    label.line,
                    format!("label \"{}\" is not snake_case", label.text),
                ));
            }
            for (vprefix, lprefix) in [
                ("Host", "host_"),
                ("Fault", "fault_"),
                ("Serve", "serve_"),
                ("Balance", "balance_"),
            ] {
                if variant.text.starts_with(vprefix) && !label.text.starts_with(lprefix) {
                    out.push(finding(
                        ctx,
                        "telemetry-naming",
                        label.line,
                        format!(
                            "{}::{} must carry a `{}` label (got \"{}\")",
                            e.text, variant.text, lprefix, label.text
                        ),
                    ));
                }
            }
        }
    }

    // (b) Span names at every `rank_span(...)` call site.
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident
            || toks[i].text != "rank_span"
            || i + 1 >= toks.len()
            || toks[i + 1].text != "("
        {
            continue;
        }
        let mut depth = 0usize;
        for t in toks.iter().skip(i + 1).take(50) {
            match t.text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            if t.kind == TokKind::Str {
                check_span_name(ctx, t, out);
                break;
            }
        }
    }
}

/// Lint: no per-element `[i]` indexing inside `run_tiles` /
/// `run_tiles_collect` kernel bodies in the fused hydro kernels.
/// Element access there must go through slice re-borrows (`&row[..]`,
/// `&buf[a..b]`) or iterators, which keep tile bounds explicit and
/// let bounds checks hoist out of the hot x-loops; a stray `x[i]`
/// silently re-checks every element. The scan walks the entire
/// argument list, so closures captured into the parallel tile body
/// cannot smuggle per-iteration indexing back in either.
fn tile_bounds(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !ctx.rel.starts_with(TILE_KERNEL_PATH) {
        return;
    }
    let toks = ctx.toks();
    let mut i = 0;
    while i < toks.len() {
        let call = toks[i].kind == TokKind::Ident
            && (toks[i].text == "run_tiles" || toks[i].text == "run_tiles_collect")
            && !ctx.is_test[i]
            && toks.get(i + 1).is_some_and(|t| t.text == "(");
        if !call {
            i += 1;
            continue;
        }
        let call_name = toks[i].text.clone();
        // Walk the run_tiles(...) argument list to its closing paren.
        let mut depth = 0usize;
        let mut j = i + 1;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                "[" if j > 0 => {
                    let prev = &toks[j - 1];
                    // `expr[...]` indexing: the bracket follows a value
                    // (identifier, `]`, or `)`). Anything else — `&[`,
                    // `vec![`, attribute brackets — is not an index.
                    if prev.kind == TokKind::Ident || prev.text == "]" || prev.text == ")" {
                        let (end, reborrow) = bracket_is_reborrow(toks, j);
                        if !reborrow {
                            out.push(finding(
                                ctx,
                                "tile-bounds",
                                toks[j].line,
                                format!(
                                    "indexed element access `{}[...]` inside a `{call_name}` kernel \
                                     body: re-borrow the row as a slice (`&row[..]`, `&buf[a..b]`) \
                                     or iterate, so tile bounds stay explicit and bounds checks \
                                     hoist out of the x-loop",
                                    prev.text
                                ),
                            ));
                        }
                        j = end;
                        continue;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        i = j + 1;
    }
}

/// Scan a `[`..`]` pair starting at `open`; returns the index just
/// past the matching `]` and whether the contents are a range
/// re-borrow (a `..` at bracket depth 1) rather than a single-element
/// index.
pub(crate) fn bracket_is_reborrow(toks: &[Tok], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut reborrow = false;
    let mut j = open;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "[" | "(" | "{" => depth += 1,
            "]" | ")" | "}" => {
                depth -= 1;
                if depth == 0 {
                    return (j + 1, reborrow);
                }
            }
            "." if depth == 1 && toks.get(j + 1).is_some_and(|t| t.text == ".") => {
                reborrow = true;
            }
            _ => {}
        }
        j += 1;
    }
    (j, reborrow)
}

fn check_span_name(ctx: &FileCtx<'_>, t: &Tok, out: &mut Vec<Finding>) {
    if !is_snake_case(&t.text) {
        out.push(finding(
            ctx,
            "telemetry-naming",
            t.line,
            format!("span name \"{}\" is not snake_case", t.text),
        ));
        return;
    }
    for prefix in ["fault", "host", "serve", "balance"] {
        if t.text.starts_with(prefix)
            && t.text != prefix
            && !t.text.starts_with(&format!("{prefix}_"))
        {
            out.push(finding(
                ctx,
                "telemetry-naming",
                t.line,
                format!(
                    "span name \"{}\" must use the `{}_` prefix convention",
                    t.text, prefix
                ),
            ));
        }
    }
}

fn is_snake_case(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().is_some_and(|c| c.is_ascii_lowercase())
        && s.chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}
