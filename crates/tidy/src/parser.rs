//! A recursive-descent item/expression parser over the lexer's token
//! stream — just enough Rust to build a workspace call graph: `mod` /
//! `impl` / `trait` scopes, `fn` items with bodies, `use` imports,
//! and inside bodies the events the deep analyses consume (calls,
//! method calls, macro invocations, indexing, struct literals, `for`
//! headers, conditional returns). Closures are attributed to their
//! enclosing function. No full Rust grammar is attempted; everything
//! this parser cannot classify is simply not an event, which the
//! analyses treat conservatively (see DESIGN.md).

use crate::lexer::{Lexed, Tok, TokKind};

/// One source event inside a function body.
#[derive(Debug, Clone)]
pub enum Event {
    /// `a::b::f(...)` or `.f(...)`. `path` holds the written segments
    /// (last one is the callee name); `receiver` is the identifier
    /// directly left of the dot for simple method calls.
    Call {
        path: Vec<String>,
        method: bool,
        receiver: Option<String>,
        line: usize,
    },
    /// `name!(...)` / `name!{...}` / `name![...]`.
    MacroUse { name: String, line: usize },
    /// Non-range indexing `recv[expr]` in value position.
    Index { recv: String, line: usize },
    /// `Name { ... }` struct literal (or struct pattern) mention.
    StructLit { name: String, line: usize },
    /// Identifiers appearing in a `for ... in HEADER {` header.
    ForHeader { idents: Vec<String>, line: usize },
    /// `x.as_ptr() as <int>`: a pointer observed as an integer, whose
    /// value varies run to run under ASLR/allocator behaviour.
    PtrIntCast { line: usize },
    /// A `return` statement. `conditional` means it sits deeper than
    /// the function's top brace level; `kind` is the token right after
    /// `return` (`Ok`, `Err`, `Some`, `;`, ...); `degenerate_guard`
    /// means the nearest enclosing `if` condition looks like an
    /// empty/size-one fast path (`== 0`, `== 1`, `is_empty`, `len`,
    /// `size`), which the cost analysis exempts.
    Return {
        conditional: bool,
        kind: String,
        degenerate_guard: bool,
        line: usize,
    },
}

/// One parsed function (free fn, inherent/trait-impl method, or trait
/// default method).
#[derive(Debug, Clone)]
pub struct FnDef {
    pub name: String,
    /// `impl Type` / `impl Trait for Type` self type, if a method.
    pub self_ty: Option<String>,
    /// Trait name for `impl Trait for Type` methods and trait default
    /// methods.
    pub trait_name: Option<String>,
    /// Crate identifier (package name with `-` → `_`).
    pub crate_ident: String,
    /// Module path inside the crate (from the file path plus inline
    /// `mod` blocks).
    pub module: Vec<String>,
    /// Workspace-relative file path.
    pub file: String,
    /// Line of the `fn` keyword.
    pub line: usize,
    /// Inside `#[cfg(test)]` / `#[test]` / a test target.
    pub is_test: bool,
    /// Identifier tokens of the return type (between `->` and the
    /// body), e.g. `["Result", "SimDuration", "GpuError"]`.
    pub ret: Vec<String>,
    pub events: Vec<Event>,
}

/// One parsed file: its functions, its `use` imports (alias → full
/// path), and the identifiers declared with an unordered container
/// type (`HashMap` / `HashSet`), which the determinism analysis
/// treats as unordered iteration receivers.
#[derive(Debug, Default)]
pub struct ParsedFile {
    pub fns: Vec<FnDef>,
    pub imports: Vec<(String, Vec<String>)>,
    pub unordered_names: Vec<String>,
}

const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "in", "as",
    "move", "fn", "let", "mut", "ref", "unsafe", "dyn", "impl", "where", "use", "pub", "crate",
    "super", "self", "Self", "true", "false", "const", "static", "struct", "enum", "trait", "type",
    "mod", "extern", "box", "await", "async", "yield",
];

fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

/// Derive the in-crate module path from a file path relative to the
/// crate's `src/` dir: `src/decomp/block.rs` → `["decomp", "block"]`,
/// `src/lib.rs` / `src/main.rs` / `mod.rs` components are dropped.
pub fn module_path_of(rel_in_src: &str) -> Vec<String> {
    rel_in_src
        .trim_end_matches(".rs")
        .split('/')
        .filter(|s| !matches!(*s, "lib" | "main" | "mod" | ""))
        .map(str::to_string)
        .collect()
}

/// Parse one lexed file. `is_test` is the per-token test mask from
/// [`crate::lexer::test_mask`].
pub fn parse_file(
    rel: &str,
    crate_ident: &str,
    file_module: &[String],
    lexed: &Lexed,
    is_test: &[bool],
) -> ParsedFile {
    let toks = &lexed.toks;
    let mut out = ParsedFile::default();
    collect_unordered_names(toks, &mut out.unordered_names);

    // Scope stacks. Depth counts `{` nesting; entries remember the
    // depth *at which their brace opened* so `}` pops them.
    let mut depth = 0usize;
    let mut mods: Vec<(String, usize)> = Vec::new();
    // (self_ty, trait_name, depth)
    let mut impls: Vec<(Option<String>, Option<String>, usize)> = Vec::new();

    let mut i = 0;
    let n = toks.len();
    while i < n {
        let t = &toks[i];
        match t.text.as_str() {
            "{" => {
                depth += 1;
                i += 1;
            }
            "}" => {
                depth = depth.saturating_sub(1);
                while mods.last().is_some_and(|m| m.1 == depth) {
                    mods.pop();
                }
                while impls.last().is_some_and(|m| m.2 == depth) {
                    impls.pop();
                }
                i += 1;
            }
            "#" if toks.get(i + 1).is_some_and(|t| t.text == "[") => {
                i = skip_balanced(toks, i + 1, "[", "]");
            }
            "use" => {
                i = parse_use(toks, i, &mut out.imports);
            }
            "mod" => {
                // `mod name;` or `mod name {`.
                if let Some(name) = toks.get(i + 1) {
                    if name.kind == TokKind::Ident {
                        if toks.get(i + 2).is_some_and(|t| t.text == "{") {
                            mods.push((name.text.clone(), depth));
                        }
                        i += 2;
                        continue;
                    }
                }
                i += 1;
            }
            "impl" => {
                let (self_ty, trait_name, next) = parse_impl_header(toks, i);
                if toks.get(next).is_some_and(|t| t.text == "{") {
                    impls.push((self_ty, trait_name, depth));
                }
                i = next;
            }
            "trait" => {
                // `trait Name ... {`: default methods get trait_name.
                if let Some(name) = toks.get(i + 1) {
                    if name.kind == TokKind::Ident {
                        let open = seek(toks, i + 2, &["{", ";"]);
                        if toks.get(open).is_some_and(|t| t.text == "{") {
                            impls.push((None, Some(name.text.clone()), depth));
                        }
                        i = open;
                        continue;
                    }
                }
                i += 1;
            }
            "fn" => {
                let Some(name) = toks.get(i + 1) else {
                    i += 1;
                    continue;
                };
                if name.kind != TokKind::Ident {
                    i += 1;
                    continue;
                }
                let mut module: Vec<String> = file_module.to_vec();
                module.extend(mods.iter().map(|(m, _)| m.clone()));
                let (self_ty, trait_name) = impls
                    .last()
                    .map(|(s, tr, _)| (s.clone(), tr.clone()))
                    .unwrap_or((None, None));
                let mut def = FnDef {
                    name: name.text.clone(),
                    self_ty,
                    trait_name,
                    crate_ident: crate_ident.to_string(),
                    module,
                    file: rel.to_string(),
                    line: t.line,
                    is_test: is_test.get(i).copied().unwrap_or(false),
                    ret: Vec::new(),
                    events: Vec::new(),
                };
                // Signature: skip to the body `{` or a `;` (trait
                // decl), capturing return-type idents after `->`.
                let mut j = i + 2;
                let mut angle = 0isize;
                let mut paren = 0isize;
                let mut in_ret = false;
                while j < n {
                    let s = toks[j].text.as_str();
                    match s {
                        "(" => paren += 1,
                        ")" => paren -= 1,
                        "<" if paren == 0 => angle += 1,
                        ">" if paren == 0 => {
                            if toks.get(j.wrapping_sub(1)).is_some_and(|p| p.text == "-") {
                                in_ret = true;
                            } else {
                                angle -= 1;
                            }
                        }
                        "where" => in_ret = false,
                        "{" if paren == 0 && angle <= 0 => break,
                        ";" if paren == 0 && angle <= 0 => break,
                        _ => {
                            if in_ret && toks[j].kind == TokKind::Ident {
                                def.ret.push(toks[j].text.clone());
                            }
                        }
                    }
                    j += 1;
                }
                if toks.get(j).is_some_and(|t| t.text == "{") {
                    let end = parse_body(toks, j, &mut def.events);
                    out.fns.push(def);
                    i = end;
                } else {
                    // Declaration only (trait method without default).
                    i = j + 1;
                }
            }
            _ => i += 1,
        }
    }
    out
}

/// Parse a `{`-delimited body starting at `open`; push events; return
/// the index just past the matching `}`.
fn parse_body(toks: &[Tok], open: usize, events: &mut Vec<Event>) -> usize {
    let n = toks.len();
    let mut depth = 0usize;
    // Stack of enclosing `if` conditions: (depth_at_open, degenerate).
    let mut ifs: Vec<(usize, bool)> = Vec::new();
    let mut i = open;
    while i < n {
        let t = &toks[i];
        match t.text.as_str() {
            "{" => {
                depth += 1;
                i += 1;
                continue;
            }
            "}" => {
                depth -= 1;
                while ifs.last().is_some_and(|f| f.0 >= depth) {
                    ifs.pop();
                }
                if depth == 0 {
                    return i + 1;
                }
                i += 1;
                continue;
            }
            "#" if toks.get(i + 1).is_some_and(|t| t.text == "[") => {
                i = skip_balanced(toks, i + 1, "[", "]");
                continue;
            }
            "if" => {
                // Collect condition tokens to the opening `{`. A `=>`
                // or a bare `}` first means this `if` was a match
                // guard, not an if-statement: no frame, resume normal
                // scanning from where we stopped.
                let mut j = i + 1;
                let mut par = 0isize;
                let mut degenerate = false;
                let mut guard = false;
                while j < n {
                    let s = toks[j].text.as_str();
                    match s {
                        "(" | "[" => par += 1,
                        ")" | "]" => {
                            par -= 1;
                            if par < 0 {
                                // Left the enclosing expression: this
                                // was a guard inside macro/call parens
                                // (`matches!(x, P if c)`).
                                guard = true;
                                break;
                            }
                        }
                        "{" if par == 0 => break,
                        "}" if par == 0 => {
                            guard = true;
                            break;
                        }
                        "is_empty" | "len" | "size" => degenerate = true,
                        "=" if toks.get(j + 1).is_some_and(|t| t.text == ">") => {
                            guard = true;
                            break;
                        }
                        "=" if toks.get(j + 1).is_some_and(|t| t.text == "=") => {
                            let operand = toks.get(j + 2).map(|t| t.text.as_str());
                            let before = j.checked_sub(1).map(|k| toks[k].text.as_str());
                            if matches!(operand, Some("0") | Some("1"))
                                || matches!(before, Some("0") | Some("1"))
                            {
                                degenerate = true;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if !guard {
                    ifs.push((depth, degenerate));
                }
                i = j;
                continue;
            }
            "for" => {
                let mut idents = Vec::new();
                let mut j = i + 1;
                while j < n && toks[j].text != "{" {
                    if toks[j].kind == TokKind::Ident && !is_keyword(&toks[j].text) {
                        idents.push(toks[j].text.clone());
                    }
                    j += 1;
                }
                events.push(Event::ForHeader {
                    idents,
                    line: t.line,
                });
                i = j;
                continue;
            }
            "return" => {
                let kind = toks
                    .get(i + 1)
                    .map(|t| t.text.clone())
                    .unwrap_or_else(|| ";".to_string());
                events.push(Event::Return {
                    conditional: depth > 1,
                    kind,
                    degenerate_guard: ifs.last().is_some_and(|f| f.1),
                    line: t.line,
                });
                i += 1;
                continue;
            }
            _ => {}
        }

        if t.kind == TokKind::Ident && !is_keyword(&t.text) {
            let next = toks.get(i + 1).map(|t| t.text.as_str());
            // Macro invocation.
            if next == Some("!") {
                events.push(Event::MacroUse {
                    name: t.text.clone(),
                    line: t.line,
                });
                i += 2;
                continue;
            }
            // Call or method call.
            if next == Some("(") {
                let (path, method, receiver) = call_shape(toks, i);
                if matches!(
                    path.last().map(String::as_str),
                    Some("as_ptr" | "as_mut_ptr")
                ) {
                    let close = skip_balanced(toks, i + 1, "(", ")");
                    if toks.get(close).is_some_and(|t| t.text == "as") {
                        events.push(Event::PtrIntCast { line: t.line });
                    }
                }
                events.push(Event::Call {
                    path,
                    method,
                    receiver,
                    line: t.line,
                });
                i += 1;
                continue;
            }
            // Struct literal / pattern `Name {` (uppercase names only;
            // lowercase `name {` is almost always control flow input).
            if next == Some("{")
                && t.text
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_uppercase())
            {
                events.push(Event::StructLit {
                    name: t.text.clone(),
                    line: t.line,
                });
                // Do not consume the `{`: depth tracking handles it.
                i += 1;
                continue;
            }
            // Indexing `recv[expr]` (value position, non-range).
            if next == Some("[") {
                let (end, reborrow) = crate::lints::bracket_is_reborrow(toks, i + 1);
                if !reborrow {
                    events.push(Event::Index {
                        recv: t.text.clone(),
                        line: t.line,
                    });
                }
                // Walk *into* the bracket so nested events are seen;
                // only skip when the bracket was empty-ish.
                let _ = end;
                i += 1;
                continue;
            }
        }
        i += 1;
    }
    n
}

/// Classify the call whose name token sits at `idx` (followed by `(`).
/// Returns (path segments ending in the name, is_method, receiver).
fn call_shape(toks: &[Tok], idx: usize) -> (Vec<String>, bool, Option<String>) {
    let mut segs = vec![toks[idx].text.clone()];
    let mut k = idx;
    // Leading `a :: b ::` path segments.
    while k >= 3 && toks[k - 1].text == ":" && toks[k - 2].text == ":" {
        let before = &toks[k - 3];
        if before.kind == TokKind::Ident {
            segs.insert(0, before.text.clone());
            k -= 3;
        } else {
            break;
        }
    }
    if k >= 1 && toks[k - 1].text == "." {
        let receiver = if k >= 2 && toks[k - 2].kind == TokKind::Ident {
            Some(toks[k - 2].text.clone())
        } else {
            None
        };
        return (segs, true, receiver);
    }
    (segs, false, None)
}

/// Parse `use path::to::{a, b as c};` into alias → path entries.
/// Returns the index just past the closing `;`. Glob imports are
/// ignored (the call graph treats them as unresolved).
fn parse_use(toks: &[Tok], start: usize, imports: &mut Vec<(String, Vec<String>)>) -> usize {
    let n = toks.len();
    let mut prefix: Vec<String> = Vec::new();
    let mut group: Vec<usize> = Vec::new(); // prefix lengths at `{`
    let mut pending: Vec<String> = Vec::new();
    let mut i = start + 1;
    while i < n && toks[i].text != ";" {
        let t = &toks[i];
        match t.text.as_str() {
            ":" => {}
            "{" => {
                group.push(prefix.len());
                prefix.append(&mut pending);
            }
            "}" => {
                flush_use(&prefix, &mut pending, imports);
                if let Some(len) = group.pop() {
                    prefix.truncate(len);
                }
            }
            "," => flush_use(&prefix, &mut pending, imports),
            "as" => {
                // `path as alias`: alias maps to the pending path.
                if let Some(alias) = toks.get(i + 1) {
                    let mut full = prefix.clone();
                    full.append(&mut pending);
                    imports.push((alias.text.clone(), full));
                    i += 2;
                    continue;
                }
            }
            "*" => {
                pending.clear();
            }
            _ if t.kind == TokKind::Ident => pending.push(t.text.clone()),
            _ => {}
        }
        i += 1;
    }
    flush_use(&prefix, &mut pending, imports);
    i + 1
}

fn flush_use(
    prefix: &[String],
    pending: &mut Vec<String>,
    imports: &mut Vec<(String, Vec<String>)>,
) {
    if pending.is_empty() {
        return;
    }
    let mut full = prefix.to_vec();
    full.append(pending);
    if let Some(last) = full.last() {
        imports.push((last.clone(), full.clone()));
    }
}

/// Parse an `impl` header starting at the `impl` token. Returns
/// (self_ty, trait_name, index of the token ending the header — the
/// `{` for a real impl block).
fn parse_impl_header(toks: &[Tok], start: usize) -> (Option<String>, Option<String>, usize) {
    let n = toks.len();
    let mut i = start + 1;
    // Skip `<...>` generics.
    if toks.get(i).is_some_and(|t| t.text == "<") {
        let mut angle = 0isize;
        while i < n {
            match toks[i].text.as_str() {
                "<" => angle += 1,
                ">" => {
                    angle -= 1;
                    if angle == 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    // Scan to `{`, remembering the last top-level ident before and
    // after `for`.
    let mut first: Option<String> = None;
    let mut second: Option<String> = None;
    let mut saw_for = false;
    let mut angle = 0isize;
    while i < n {
        let s = toks[i].text.as_str();
        match s {
            "<" => angle += 1,
            ">" => angle -= 1,
            "for" if angle == 0 => saw_for = true,
            "where" if angle == 0 => break,
            "{" if angle <= 0 => break,
            _ => {
                if toks[i].kind == TokKind::Ident && angle == 0 && !is_keyword(s) {
                    if saw_for {
                        second = Some(s.to_string());
                    } else {
                        first = Some(s.to_string());
                    }
                }
            }
        }
        i += 1;
    }
    if saw_for {
        (second, first, i)
    } else {
        (first, None, i)
    }
}

/// Identifiers declared with `HashMap` / `HashSet` types in this file
/// (fields, lets, params): `name: HashMap<..>`, `name: Mutex<HashMap>`,
/// `let name = HashMap::new()`.
fn collect_unordered_names(toks: &[Tok], out: &mut Vec<String>) {
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident
            || (toks[i].text != "HashMap" && toks[i].text != "HashSet")
        {
            continue;
        }
        // Walk left over type-wrapper noise to the `:` or `=` that
        // binds a name.
        let mut j = i;
        while j > 0 {
            j -= 1;
            let s = toks[j].text.as_str();
            if s == ":" && j > 0 && toks[j - 1].text == ":" {
                // `::` path segment: skip the ident before it too.
                j = j.saturating_sub(2);
                continue;
            }
            match s {
                "<" | "&" | "mut" => continue,
                _ if toks[j].kind == TokKind::Ident
                    && toks[j]
                        .text
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_ascii_uppercase()) =>
                {
                    continue; // wrapper type (Mutex, Arc, Option, ...)
                }
                ":" | "=" => {
                    if j > 0 && toks[j - 1].kind == TokKind::Ident {
                        let name = toks[j - 1].text.clone();
                        if !is_keyword(&name) && !out.contains(&name) {
                            out.push(name);
                        }
                    }
                    break;
                }
                _ => break,
            }
        }
    }
}

/// Skip a balanced pair starting at the token `open_at` (which must be
/// `open`); returns the index just past the matching closer.
fn skip_balanced(toks: &[Tok], open_at: usize, open: &str, close: &str) -> usize {
    let mut depth = 0usize;
    let mut i = open_at;
    while i < toks.len() {
        if toks[i].text == open {
            depth += 1;
        } else if toks[i].text == close {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    toks.len()
}

/// First index at or after `from` whose token text is in `stop`.
fn seek(toks: &[Tok], from: usize, stop: &[&str]) -> usize {
    let mut i = from;
    while i < toks.len() && !stop.contains(&toks[i].text.as_str()) {
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    fn parse(src: &str) -> ParsedFile {
        let lx = lexer::lex(src);
        let mask = lexer::test_mask(&lx.toks);
        parse_file("crates/x/src/lib.rs", "x", &[], &lx, &mask)
    }

    #[test]
    fn free_fns_and_calls() {
        let p = parse("fn a() { b(); m::c(1); }\nfn b() {}\n");
        assert_eq!(p.fns.len(), 2);
        let a = &p.fns[0];
        assert_eq!(a.name, "a");
        let calls: Vec<_> = a
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Call { path, method, .. } => Some((path.join("::"), *method)),
                _ => None,
            })
            .collect();
        assert_eq!(
            calls,
            [("b".to_string(), false), ("m::c".to_string(), false)]
        );
    }

    #[test]
    fn impl_methods_get_self_ty_and_trait() {
        let p = parse(
            "impl Foo { fn m(&self) { self.n(); } }\n\
             impl Coupler for Bar { fn exchange(&mut self) {} }\n\
             trait Coupler { fn tick(&self) { helper(); } }\n",
        );
        let m = &p.fns[0];
        assert_eq!(m.self_ty.as_deref(), Some("Foo"));
        assert!(m.trait_name.is_none());
        let ex = &p.fns[1];
        assert_eq!(ex.self_ty.as_deref(), Some("Bar"));
        assert_eq!(ex.trait_name.as_deref(), Some("Coupler"));
        let tick = &p.fns[2];
        assert!(tick.self_ty.is_none());
        assert_eq!(tick.trait_name.as_deref(), Some("Coupler"));
    }

    #[test]
    fn method_calls_carry_receivers() {
        let p = parse("fn f(x: &M) { x.go(); self.inner.pending.drain(); }");
        let calls: Vec<_> = p.fns[0]
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Call {
                    path,
                    method: true,
                    receiver,
                    ..
                } => Some((path[0].clone(), receiver.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(
            calls,
            [
                ("go".to_string(), Some("x".to_string())),
                ("drain".to_string(), Some("pending".to_string()))
            ]
        );
    }

    #[test]
    fn macros_and_struct_literals_and_indexing() {
        let p = parse(
            "fn f(v: &[u8], i: usize) -> R { panic!(\"x\"); let r = R { a: v[i] }; \
             let s = &v[1..3]; Ok(r) }",
        );
        let ev = &p.fns[0].events;
        assert!(ev
            .iter()
            .any(|e| matches!(e, Event::MacroUse { name, .. } if name == "panic")));
        assert!(ev
            .iter()
            .any(|e| matches!(e, Event::StructLit { name, .. } if name == "R")));
        let idx: Vec<_> = ev
            .iter()
            .filter_map(|e| match e {
                Event::Index { recv, .. } => Some(recv.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(idx, ["v"], "range re-borrow must not be an Index event");
    }

    #[test]
    fn returns_classify_conditional_and_guards() {
        let p = parse(
            "fn f(n: usize) -> Result<(), E> {\n\
               if n == 1 { return Ok(()); }\n\
               if fast { return Ok(()); }\n\
               return Ok(());\n\
             }",
        );
        let rets: Vec<_> = p.fns[0]
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Return {
                    conditional,
                    degenerate_guard,
                    ..
                } => Some((*conditional, *degenerate_guard)),
                _ => None,
            })
            .collect();
        assert_eq!(rets, [(true, true), (true, false), (false, false)]);
    }

    #[test]
    fn use_imports_resolve_groups_and_aliases() {
        let p = parse(
            "use hsim_raja::stats::{drain_stats, self as st};\n\
             use hsim_gpu::xfer;\n\
             use a::b as c;\n",
        );
        let find = |n: &str| {
            p.imports
                .iter()
                .find(|(a, _)| a == n)
                .map(|(_, p)| p.join("::"))
        };
        assert_eq!(
            find("drain_stats").as_deref(),
            Some("hsim_raja::stats::drain_stats")
        );
        assert_eq!(find("xfer").as_deref(), Some("hsim_gpu::xfer"));
        assert_eq!(find("c").as_deref(), Some("a::b"));
    }

    #[test]
    fn unordered_names_are_collected() {
        let p = parse(
            "struct S { cache: Mutex<HashMap<u64, V>>, jobs: HashMap<u64, u64>, v: Vec<u8> }\n\
             fn f() { let seen = HashSet::new(); let fine = Vec::new(); }",
        );
        assert_eq!(p.unordered_names, ["cache", "jobs", "seen"]);
    }

    #[test]
    fn test_fns_are_masked() {
        let p = parse("#[test]\nfn t() { x.unwrap(); }\nfn live() {}");
        assert!(p.fns[0].is_test);
        assert!(!p.fns[1].is_test);
    }

    #[test]
    fn for_headers_capture_idents() {
        let p = parse("fn f(m: &M) { for (k, v) in &self.pending { use_it(k, v); } }");
        let hdr = p.fns[0]
            .events
            .iter()
            .find_map(|e| match e {
                Event::ForHeader { idents, .. } => Some(idents.clone()),
                _ => None,
            })
            .unwrap();
        assert!(hdr.contains(&"pending".to_string()));
    }

    #[test]
    fn module_paths_derive_from_file_paths() {
        assert_eq!(module_path_of("decomp/block.rs"), ["decomp", "block"]);
        assert_eq!(module_path_of("lib.rs"), Vec::<String>::new());
        assert_eq!(module_path_of("memory/mod.rs"), ["memory"]);
    }
}
