//! A minimal Rust lexer: just enough to lint over token streams
//! without external dependencies.
//!
//! Produces identifier / string / char / number / punctuation tokens
//! with line numbers, plus a per-line comment table (line and block
//! comments, including doc comments) so lints can resolve
//! `// tidy-allow:` directives and `// SAFETY:` requirements. String
//! and comment *contents* never become code tokens, so a lint pattern
//! such as `unwrap` cannot be tripped by prose.

/// Token classification. Keywords are ordinary [`TokKind::Ident`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    Ident,
    Lifetime,
    Str,
    Char,
    Num,
    Punct,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    /// 1-based source line.
    pub line: usize,
}

/// One comment's text on one source line (block comments spanning
/// multiple lines yield one entry per line).
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based source line.
    pub line: usize,
    /// Comment text without the `//` / `/*` markers.
    pub text: String,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// All comment text on `line`, concatenated.
    pub fn comment_on(&self, line: usize) -> Option<String> {
        let mut out = String::new();
        for c in self.comments.iter().filter(|c| c.line == line) {
            out.push_str(&c.text);
            out.push(' ');
        }
        if out.is_empty() {
            None
        } else {
            Some(out)
        }
    }
}

/// Lex `src` into tokens and comments. Never fails: unterminated
/// constructs simply end at EOF (the compiler is the authority on
/// validity; tidy only needs a faithful token stream for valid files).
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0;
    let mut line = 1;
    let n = b.len();

    macro_rules! bump_line {
        ($c:expr) => {
            if $c == '\n' {
                line += 1;
            }
        };
    }

    while i < n {
        let c = b[i];
        // Whitespace.
        if c.is_whitespace() {
            bump_line!(c);
            i += 1;
            continue;
        }
        // Line comment (//, ///, //!).
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let mut j = i + 2;
            // Swallow doc markers so comment text starts at the prose.
            if j < n && (b[j] == '/' || b[j] == '!') {
                j += 1;
            }
            let start = j;
            while j < n && b[j] != '\n' {
                j += 1;
            }
            out.comments.push(Comment {
                line,
                text: b[start..j].iter().collect(),
            });
            i = j;
            continue;
        }
        // Block comment, possibly nested.
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let mut depth = 1;
            let mut j = i + 2;
            let mut text = String::new();
            while j < n && depth > 0 {
                if b[j] == '/' && j + 1 < n && b[j + 1] == '*' {
                    depth += 1;
                    j += 2;
                } else if b[j] == '*' && j + 1 < n && b[j + 1] == '/' {
                    depth -= 1;
                    j += 2;
                } else {
                    if b[j] == '\n' {
                        out.comments.push(Comment {
                            line,
                            text: std::mem::take(&mut text),
                        });
                        line += 1;
                    } else {
                        text.push(b[j]);
                    }
                    j += 1;
                }
            }
            out.comments.push(Comment { line, text });
            i = j;
            continue;
        }
        // Raw identifiers: r#ident (but not r#"...", which is a raw
        // string). The token text drops the `r#` so lints and the
        // parser see the bare name.
        if c == 'r' && i + 2 < n && b[i + 1] == '#' && (b[i + 2].is_alphabetic() || b[i + 2] == '_')
        {
            let mut j = i + 2;
            while j < n && (b[j].is_alphanumeric() || b[j] == '_') {
                j += 1;
            }
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text: b[i + 2..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }
        // Raw strings: r"..." / r#"..."# / br#"..."#.
        if (c == 'r' || c == 'b') && is_raw_string_start(&b, i) {
            let mut j = i + 1;
            if b[i] == 'b' {
                j += 1; // skip the r of br
            }
            let mut hashes = 0;
            while j < n && b[j] == '#' {
                hashes += 1;
                j += 1;
            }
            debug_assert!(j < n && b[j] == '"');
            j += 1;
            let start_line = line;
            let start = j;
            'raw: while j < n {
                if b[j] == '"' {
                    let mut k = 0;
                    while k < hashes && j + 1 + k < n && b[j + 1 + k] == '#' {
                        k += 1;
                    }
                    if k == hashes {
                        out.toks.push(Tok {
                            kind: TokKind::Str,
                            text: b[start..j].iter().collect(),
                            line: start_line,
                        });
                        i = j + 1 + hashes;
                        break 'raw;
                    }
                }
                bump_line!(b[j]);
                j += 1;
            }
            if j >= n {
                i = n;
            }
            continue;
        }
        // Plain strings (and byte strings).
        if c == '"' || (c == 'b' && i + 1 < n && b[i + 1] == '"') {
            let mut j = if c == 'b' { i + 2 } else { i + 1 };
            let start_line = line;
            let start = j;
            while j < n {
                if b[j] == '\\' {
                    j += 2;
                    continue;
                }
                if b[j] == '"' {
                    break;
                }
                bump_line!(b[j]);
                j += 1;
            }
            out.toks.push(Tok {
                kind: TokKind::Str,
                text: b[start..j.min(n)].iter().collect(),
                line: start_line,
            });
            i = (j + 1).min(n);
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            // 'x' or '\n' → char; 'ident not followed by ' → lifetime.
            if i + 1 < n && b[i + 1] == '\\' {
                // Escaped char literal: scan to closing quote, keeping
                // the escape text verbatim (round-trip exactness). The
                // char right after the backslash is always part of the
                // escape, even when it is a quote (`'\''`).
                let mut j = i + 3;
                while j < n && b[j] != '\'' {
                    j += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Char,
                    text: b[i + 1..j.min(n)].iter().collect(),
                    line,
                });
                i = (j + 1).min(n);
                continue;
            }
            if i + 2 < n && b[i + 2] == '\'' {
                out.toks.push(Tok {
                    kind: TokKind::Char,
                    text: b[i + 1].to_string(),
                    line,
                });
                i += 3;
                continue;
            }
            // Lifetime: 'a, 'static, '_.
            let mut j = i + 1;
            while j < n && (b[j].is_alphanumeric() || b[j] == '_') {
                j += 1;
            }
            out.toks.push(Tok {
                kind: TokKind::Lifetime,
                text: b[i + 1..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }
        // Identifier / keyword.
        if c.is_alphabetic() || c == '_' {
            let mut j = i + 1;
            while j < n && (b[j].is_alphanumeric() || b[j] == '_') {
                j += 1;
            }
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text: b[i..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }
        // Number (loose: digits plus alphanumeric suffix/radix chars,
        // including signed exponents of decimal floats: 1e-5, 2.5E+3).
        if c.is_ascii_digit() {
            let radix = c == '0' && i + 1 < n && matches!(b[i + 1], 'x' | 'b' | 'o');
            let mut j = i + 1;
            while j < n {
                let ch = b[j];
                let signed_exp = !radix
                    && (ch == '+' || ch == '-')
                    && matches!(b[j - 1], 'e' | 'E')
                    && j + 1 < n
                    && b[j + 1].is_ascii_digit();
                if !(ch.is_alphanumeric() || ch == '_' || ch == '.' || signed_exp) {
                    break;
                }
                // Don't swallow a range operator `..`.
                if ch == '.' && j + 1 < n && b[j + 1] == '.' {
                    break;
                }
                j += 1;
            }
            out.toks.push(Tok {
                kind: TokKind::Num,
                text: b[i..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }
        // Single-char punctuation.
        out.toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    out
}

/// Re-render a token stream as compilable-ish source text: every
/// token separated by one space, strings as raw strings with enough
/// `#` guards, comments dropped. `lex(render(lex(src)))` must produce
/// the same (kind, text) stream as `lex(src)` — the round-trip
/// exactness contract the parser depends on, asserted over every
/// workspace file by `tests/lexer_roundtrip.rs`.
pub fn render(lexed: &Lexed) -> String {
    let mut out = String::new();
    for t in &lexed.toks {
        match t.kind {
            TokKind::Ident | TokKind::Num | TokKind::Punct => out.push_str(&t.text),
            TokKind::Lifetime => {
                out.push('\'');
                out.push_str(&t.text);
            }
            TokKind::Char => {
                out.push('\'');
                out.push_str(&t.text);
                out.push('\'');
            }
            TokKind::Str => {
                // Enough hashes to cover any `"#...` run in the content.
                let mut hashes = 0usize;
                let chars: Vec<char> = t.text.chars().collect();
                for (k, &ch) in chars.iter().enumerate() {
                    if ch == '"' {
                        let mut run = 0;
                        while k + 1 + run < chars.len() && chars[k + 1 + run] == '#' {
                            run += 1;
                        }
                        hashes = hashes.max(run + 1);
                    }
                }
                out.push('r');
                for _ in 0..hashes {
                    out.push('#');
                }
                out.push('"');
                out.push_str(&t.text);
                out.push('"');
                for _ in 0..hashes {
                    out.push('#');
                }
            }
        }
        out.push(' ');
    }
    out
}

/// Is `b[i]` the start of a raw (byte) string: `r"`, `r#`, `br"`, `br#`?
fn is_raw_string_start(b: &[char], i: usize) -> bool {
    let n = b.len();
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
        if j >= n || b[j] != 'r' {
            return false;
        }
    }
    if b[j] != 'r' {
        return false;
    }
    j += 1;
    while j < n && b[j] == '#' {
        j += 1;
    }
    j < n && b[j] == '"'
}

/// Token indices covered by `#[cfg(test)]` / `#[test]` items, as a
/// per-token mask. Lints that exempt test code consult this.
pub fn test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if is_test_attr_at(toks, i) {
            // Skip past this attribute and any further attributes to
            // the item they decorate, then mark through the item body.
            let mut j = skip_attr(toks, i);
            while j < toks.len() && toks[j].text == "#" {
                j = skip_attr(toks, j);
            }
            // The item ends at its matching `}` (fn/mod/impl) or at a
            // `;` seen before any `{` (use declarations etc.).
            let mut k = j;
            let mut depth = 0usize;
            let mut entered = false;
            while k < toks.len() {
                match toks[k].text.as_str() {
                    "{" => {
                        depth += 1;
                        entered = true;
                    }
                    "}" => {
                        depth = depth.saturating_sub(1);
                        if entered && depth == 0 {
                            break;
                        }
                    }
                    ";" if !entered => break,
                    _ => {}
                }
                k += 1;
            }
            for m in mask.iter_mut().take((k + 1).min(toks.len())).skip(i) {
                *m = true;
            }
            i = k + 1;
        } else {
            i += 1;
        }
    }
    mask
}

/// Does an attribute starting at token `i` read `#[cfg(test)]` or
/// `#[test]` (possibly with trailing args such as `#[cfg(test)]`)?
fn is_test_attr_at(toks: &[Tok], i: usize) -> bool {
    if toks[i].text != "#" || i + 1 >= toks.len() || toks[i + 1].text != "[" {
        return false;
    }
    let end = attr_end(toks, i);
    let inner: Vec<&str> = toks[i + 2..end.min(toks.len())]
        .iter()
        .map(|t| t.text.as_str())
        .collect();
    matches!(inner.as_slice(), ["test"])
        || (inner.first() == Some(&"cfg") && inner.contains(&"test"))
}

/// Index of the `]` closing the attribute starting at `#` token `i`.
fn attr_end(toks: &[Tok], i: usize) -> usize {
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(i + 1) {
        match t.text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
    }
    toks.len()
}

/// First token index after the attribute starting at `#` token `i`.
fn skip_attr(toks: &[Tok], i: usize) -> usize {
    attr_end(toks, i) + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_do_not_leak_tokens() {
        let lx = lex("let s = \"unwrap() Instant::now\"; // unwrap too\n");
        assert!(lx
            .toks
            .iter()
            .all(|t| t.kind != TokKind::Ident || (t.text != "unwrap" && t.text != "Instant")));
        assert_eq!(lx.comments.len(), 1);
        assert!(lx.comments[0].text.contains("unwrap too"));
    }

    #[test]
    fn raw_strings_are_single_tokens() {
        let lx = lex("let s = r#\"a \" b\"#; let t = 1;");
        let strs: Vec<_> = lx.toks.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert_eq!(strs[0].text, "a \" b");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lx = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes = lx
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        let chars = lx.toks.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn raw_identifiers_are_single_tokens() {
        let lx = lex("fn r#type(r#fn: u32) -> u32 { r#fn }");
        let idents: Vec<&str> = lx
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, ["fn", "type", "fn", "u32", "u32", "fn"]);
        // No stray `#` punct leaked out of the raw identifiers.
        assert!(lx.toks.iter().all(|t| t.text != "#"));
    }

    #[test]
    fn raw_ident_does_not_shadow_raw_string() {
        let lx = lex("let a = r#\"s\"#; let b = r#end;");
        assert!(lx
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Str && t.text == "s"));
        assert!(lx
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "end"));
    }

    #[test]
    fn signed_exponents_are_one_number_token() {
        let lx = lex("let x = 1.5e-3 + 2E+4 - 7e2; let r = 0xAE-3;");
        let nums: Vec<&str> = lx
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.as_str())
            .collect();
        // Hex `0xAE-3` must stay a subtraction (E is a hex digit).
        assert_eq!(nums, ["1.5e-3", "2E+4", "7e2", "0xAE", "3"]);
    }

    #[test]
    fn escaped_char_literals_keep_their_text() {
        let lx = lex(r"let a = '\n'; let b = '\''; let c = 'x';");
        let chars: Vec<&str> = lx
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(chars, ["\\n", "\\'", "x"]);
    }

    #[test]
    fn nested_block_comments_lex_exactly() {
        let lx =
            lex("/* a /* nested */ b */ fn f() {}\nlet x = 1; /* /* deep /* deeper */ */ */ y");
        let idents: Vec<&str> = lx
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, ["fn", "f", "let", "x", "y"]);
        assert!(lx.comments[0].text.contains("a "));
        assert!(lx.comments[0].text.contains(" b"));
    }

    #[test]
    fn render_round_trips() {
        let src = "fn f<'a>(x: &'a str) -> u64 { let s = \"q\\\"uo\"; let r = r#\"a\"# ; \
                   let c = '\\n'; let n = 1e-5; x.len() as u64 }";
        let a = lex(src);
        let b = lex(&render(&a));
        let pairs = |l: &Lexed| -> Vec<(TokKind, String)> {
            l.toks.iter().map(|t| (t.kind, t.text.clone())).collect()
        };
        assert_eq!(pairs(&a), pairs(&b));
    }

    #[test]
    fn line_numbers_track_newlines_in_block_comments() {
        let lx = lex("/* a\nb */\nfn f() {}\n");
        let f = lx.toks.iter().find(|t| t.text == "fn").unwrap();
        assert_eq!(f.line, 3);
    }

    #[test]
    fn cfg_test_mod_is_masked() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\nfn live2() {}\n";
        let lx = lex(src);
        let mask = test_mask(&lx.toks);
        let unwrap_idx = lx.toks.iter().position(|t| t.text == "unwrap").unwrap();
        let live2_idx = lx.toks.iter().position(|t| t.text == "live2").unwrap();
        assert!(mask[unwrap_idx]);
        assert!(!mask[live2_idx]);
    }

    #[test]
    fn test_attr_fn_is_masked() {
        let src = "#[test]\nfn check() { y.expect(\"boom\"); }\nfn live() {}\n";
        let lx = lex(src);
        let mask = test_mask(&lx.toks);
        let expect_idx = lx.toks.iter().position(|t| t.text == "expect").unwrap();
        let live_idx = lx.toks.iter().position(|t| t.text == "live").unwrap();
        assert!(mask[expect_idx]);
        assert!(!mask[live_idx]);
    }
}
