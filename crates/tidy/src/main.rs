//! `hsim-tidy` — run the workspace invariant linter.
//!
//! Usage:
//!   cargo run -p hsim-tidy                      # scan the workspace root
//!   cargo run -p hsim-tidy -- <path>            # scan an arbitrary tree
//!   cargo run -p hsim-tidy -- --list            # print the lint registry
//!   cargo run -p hsim-tidy -- --budget-ms 10000 # fail if the scan runs long
//!
//! Exit status is non-zero when any violation is found, so CI can use
//! it as a blocking gate. `--budget-ms` makes scan *time* part of the
//! gate: the deep analyses are advertised as cheap enough to block on,
//! and this keeps that claim honest as the workspace grows.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant; // tidy-allow: wall-clock -- tidy times its own scan to enforce --budget-ms

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if args.iter().any(|a| a == "--list") {
        for (name, desc) in hsim_tidy::lints::LINTS {
            println!("{name:18} {desc}");
        }
        return ExitCode::SUCCESS;
    }

    let mut budget_ms: Option<u64> = None;
    let mut root_arg: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--budget-ms" {
            match it.next().and_then(|v| v.parse().ok()) {
                Some(ms) => budget_ms = Some(ms),
                None => {
                    eprintln!("tidy: --budget-ms needs an integer millisecond value");
                    return ExitCode::FAILURE;
                }
            }
        } else if root_arg.is_none() {
            root_arg = Some(a);
        } else {
            eprintln!("tidy: unexpected argument `{a}`");
            return ExitCode::FAILURE;
        }
    }

    let root = match root_arg {
        Some(p) => PathBuf::from(p),
        // The binary lives at crates/tidy; the workspace root is two up.
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."),
    };
    let root = root.canonicalize().unwrap_or(root);

    let t0 = Instant::now(); // tidy-allow: wall-clock -- the scan-time budget is real elapsed time by design
    let report = match hsim_tidy::check_dir(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("tidy: cannot scan {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    let elapsed_ms = t0.elapsed().as_millis() as u64;

    for v in &report.violations {
        println!("{v}");
    }
    eprintln!(
        "tidy: {} files scanned, {} violation(s), {elapsed_ms} ms",
        report.files_scanned,
        report.violations.len()
    );
    if let Some(budget) = budget_ms {
        if elapsed_ms > budget {
            eprintln!("tidy: scan blew its time budget ({elapsed_ms} ms > {budget} ms)");
            return ExitCode::FAILURE;
        }
    }
    if report.violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
