//! `hsim-tidy` — run the workspace invariant linter.
//!
//! Usage:
//!   cargo run -p hsim-tidy              # scan the workspace root
//!   cargo run -p hsim-tidy -- <path>    # scan an arbitrary tree
//!   cargo run -p hsim-tidy -- --list    # print the lint registry
//!
//! Exit status is non-zero when any violation is found, so CI can use
//! it as a blocking gate.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if args.iter().any(|a| a == "--list") {
        for (name, desc) in hsim_tidy::lints::LINTS {
            println!("{name:18} {desc}");
        }
        return ExitCode::SUCCESS;
    }

    let root = match args.first() {
        Some(p) => PathBuf::from(p),
        // The binary lives at crates/tidy; the workspace root is two up.
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."),
    };
    let root = root.canonicalize().unwrap_or(root);

    let report = match hsim_tidy::check_dir(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("tidy: cannot scan {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    for v in &report.violations {
        println!("{v}");
    }
    eprintln!(
        "tidy: {} files scanned, {} violation(s)",
        report.files_scanned,
        report.violations.len()
    );
    if report.violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
