//! The call-graph-deep analyses: determinism taint, panic-freedom
//! reachability, and virtual-time cost accounting. Each walks the
//! workspace call graph from a configured root set and reports every
//! violation with a **blame path** — the root → … → site call chain,
//! one hop per line with file:line evidence — so a finding is an
//! argument, not an assertion.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::Graph;
use crate::parser::{Event, FnDef};
use crate::Finding;

/// Per-file facts the analyses need beyond the call graph.
#[derive(Debug, Default)]
pub struct FileInfo {
    /// Identifiers declared with `HashMap`/`HashSet` types.
    pub unordered_names: Vec<String>,
    /// Lines carrying a `tidy-allow: wall-clock` directive — those
    /// reads are sanctioned host-perf measurements, not taint sources
    /// (same policy the token-level lint applies).
    pub sanctioned_wall_clock: Vec<usize>,
}

pub struct Workspace {
    pub graph: Graph,
    pub files: BTreeMap<String, FileInfo>,
}

/// Run all three deep analyses.
pub fn run_all(ws: &Workspace, out: &mut Vec<Finding>) {
    panic_reach(ws, out);
    nondet_taint(ws, out);
    cost_charge(ws, out);
}

// ---------------------------------------------------------------------------
// panic-freedom reachability
// ---------------------------------------------------------------------------

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Where unguarded slice indexing counts as a panic site: the serve
/// request path handles untrusted input, so an out-of-bounds there is
/// a remote crash. (Hydro kernel indexing is governed separately by
/// the tile-bounds lint.)
const INDEX_PANIC_PATH: &str = "serve/src/";

/// The no-panic roots: the fallible rank runner, the online runner,
/// every `Coupler` implementation, and the serve request path.
fn is_panic_root(f: &FnDef) -> bool {
    if f.trait_name.as_deref() == Some("Coupler") {
        return true;
    }
    match f.name.as_str() {
        "run_fallible" | "run_online" => true,
        "submit" | "worker_loop" | "execute" | "handle_connection" | "handle" => {
            f.file.contains("serve/src/")
        }
        _ => false,
    }
}

fn panic_reach(ws: &Workspace, out: &mut Vec<Finding>) {
    let g = &ws.graph;
    let roots: Vec<usize> = (0..g.fns.len())
        .filter(|&i| is_panic_root(&g.fns[i]))
        .collect();
    let origin = g.reach(&roots);
    let mut seen: BTreeSet<(&str, usize)> = BTreeSet::new();
    for (i, f) in g.fns.iter().enumerate() {
        if origin[i].is_none() {
            continue;
        }
        for ev in &f.events {
            let site = match ev {
                Event::Call {
                    path,
                    method: true,
                    line,
                    ..
                } if matches!(path.last().map(String::as_str), Some("unwrap" | "expect")) => {
                    Some((*line, format!("`.{}()`", path.last().unwrap())))
                }
                Event::MacroUse { name, line } if PANIC_MACROS.contains(&name.as_str()) => {
                    Some((*line, format!("`{name}!`")))
                }
                Event::Index { recv, line } if f.file.contains(INDEX_PANIC_PATH) => {
                    Some((*line, format!("unguarded index `{recv}[...]`")))
                }
                _ => None,
            };
            let Some((line, what)) = site else { continue };
            if !seen.insert((f.file.as_str(), line)) {
                continue;
            }
            out.push(Finding {
                lint: "panic-reach",
                path: f.file.clone(),
                line,
                msg: format!(
                    "{what} can panic and is reachable from a no-panic root — return a \
                     typed error instead; blame path:\n{}",
                    g.blame(&origin, i)
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// determinism taint
// ---------------------------------------------------------------------------

/// Emission sinks by name: everything that produces externally
/// visible bytes (traces, metrics, CSV, Prometheus, HTTP bodies) or
/// feeds the content hash. Any function constructing a `RunResult`
/// literal is a sink too.
const DETERMINISM_SINKS: &[&str] = &[
    "to_chrome_json",
    "to_metrics_json",
    "to_kernel_csv",
    "to_csv",
    "to_json",
    "to_markdown",
    "to_prometheus_text",
    "csv_row",
    "csv_header",
    "breakdown_table",
    "render_gantt",
    "render_response",
    "figure_csv",
    "metrics_text",
    "content_hash",
];

/// Methods whose call on an unordered container observes its
/// (nondeterministic) iteration order.
const UNORDERED_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
];

fn is_sink(f: &FnDef) -> bool {
    DETERMINISM_SINKS.contains(&f.name.as_str())
        || f.events
            .iter()
            .any(|e| matches!(e, Event::StructLit { name, .. } if name == "RunResult"))
}

fn nondet_taint(ws: &Workspace, out: &mut Vec<Finding>) {
    let g = &ws.graph;
    let roots: Vec<usize> = (0..g.fns.len()).filter(|&i| is_sink(&g.fns[i])).collect();
    let origin = g.reach(&roots);
    let empty = FileInfo::default();
    let mut seen: BTreeSet<(&str, usize)> = BTreeSet::new();
    for (i, f) in g.fns.iter().enumerate() {
        if origin[i].is_none() {
            continue;
        }
        let info = ws.files.get(&f.file).unwrap_or(&empty);
        // Shared with the token-level wall-clock lint: those files
        // measure host time by design.
        let wall_clock_ok = crate::lints::WALL_CLOCK_ALLOWED
            .iter()
            .any(|p| f.file.starts_with(p));
        for ev in &f.events {
            let site: Option<(usize, String)> = match ev {
                Event::Call {
                    path,
                    method: true,
                    receiver: Some(r),
                    line,
                } if UNORDERED_ITER_METHODS
                    .contains(&path.last().map(String::as_str).unwrap_or(""))
                    && info.unordered_names.iter().any(|n| n == r) =>
                {
                    Some((
                        *line,
                        format!(
                            "iteration order of unordered `{r}` (`.{}()`)",
                            path.last().unwrap()
                        ),
                    ))
                }
                Event::ForHeader { idents, line } => idents
                    .iter()
                    .find(|id| info.unordered_names.contains(id))
                    .map(|id| (*line, format!("for-loop over unordered `{id}`"))),
                Event::Call { path, line, .. }
                    if path.iter().any(|s| s == "Instant" || s == "SystemTime")
                        && !wall_clock_ok
                        && !info
                            .sanctioned_wall_clock
                            .iter()
                            .any(|&l| l == *line || l + 1 == *line) =>
                {
                    Some((*line, "a wall-clock read".to_string()))
                }
                Event::Call { path, line, .. }
                    if path.last().map(String::as_str) == Some("current")
                        && path.iter().any(|s| s == "thread") =>
                {
                    Some((*line, "thread identity".to_string()))
                }
                Event::PtrIntCast { line } => {
                    Some((*line, "a pointer observed as an integer".to_string()))
                }
                _ => None,
            };
            let Some((line, what)) = site else { continue };
            if !seen.insert((f.file.as_str(), line)) {
                continue;
            }
            out.push(Finding {
                lint: "nondet-taint",
                path: f.file.clone(),
                line,
                msg: format!(
                    "{what} is reachable from a deterministic emission sink — outputs must \
                     be byte-identical run to run (sort, use BTree collections, or route \
                     through RegionSlots); blame path:\n{}",
                    g.blame(&origin, i)
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// virtual-time cost accounting
// ---------------------------------------------------------------------------

/// `Comm` methods that model a communication primitive: each must
/// charge the rank's virtual clock (directly or through a callee) on
/// every completing path.
const COMM_PRIMITIVES: &[&str] = &[
    "send",
    "recv",
    "sendrecv",
    "isend",
    "wait",
    "waitall",
    "test",
    "allreduce",
    "allreduce_sum",
    "allreduce_min",
    "allreduce_max",
    "allreduce_max_u64",
    "barrier",
    "bcast",
    "bcast_vec",
    "gather_vec",
    "allreduce_vec_sum",
    "gather_f64",
    "allgather_f64",
];

/// Cost-model primitives that *return* a `SimDuration` the caller is
/// obliged to charge (or pass upward).
const COST_RETURNING: &[&str] = &[
    "launch",
    "um_alloc_and_touch",
    "um_touch_host_range",
    "h2d_time",
    "d2h_time",
    "pipelined_time",
    "p2p_time",
    "halo_leg_time",
    "retry_leg_time",
    "xfer_time",
    "msg_time",
];

/// Calls that settle a cost against the virtual clock.
const CHARGE_CALLS: &[&str] = &["charge", "wait_until", "merge"];

/// Paths exempt from the caller-side obligation: the cost models
/// themselves (gpusim primitives call each other while composing
/// costs) and the host-perf bench harness.
const COST_EXEMPT_PATHS: &[&str] = &["crates/gpusim/", "crates/bench/"];

fn has_charge_call(f: &FnDef) -> bool {
    f.events.iter().any(|e| {
        matches!(e, Event::Call { path, .. }
            if CHARGE_CALLS.contains(&path.last().map(String::as_str).unwrap_or("")))
    })
}

fn cost_charge(ws: &Workspace, out: &mut Vec<Finding>) {
    let g = &ws.graph;
    let direct: Vec<bool> = g.fns.iter().map(has_charge_call).collect();
    // Which fns transitively reach a charge call.
    let charges = g.reaches(&direct);

    for (i, f) in g.fns.iter().enumerate() {
        // Rule 1: Comm primitives charge on every completing path.
        if f.self_ty.as_deref() == Some("Comm") && COMM_PRIMITIVES.contains(&f.name.as_str()) {
            // First event that settles a cost: a direct charge call or
            // a call into a (transitively) charging callee.
            let charge_pos = f.events.iter().position(|ev| match ev {
                Event::Call { path, .. } => {
                    CHARGE_CALLS.contains(&path.last().map(String::as_str).unwrap_or(""))
                        || g.resolve_at(i, ev).iter().any(|&c| charges[c])
                }
                _ => false,
            });
            match charge_pos {
                None => out.push(Finding {
                    lint: "cost-charge",
                    path: f.file.clone(),
                    line: f.line,
                    msg: format!(
                        "communication primitive `{}` never charges the virtual clock \
                         (no `charge`/`wait_until`/`merge` on any path through it)",
                        g.qual_name(i)
                    ),
                }),
                Some(p) => {
                    for ev in &f.events[..p] {
                        if let Event::Return {
                            conditional: true,
                            kind,
                            degenerate_guard: false,
                            line,
                        } = ev
                        {
                            if kind == "Ok" || kind == "Some" {
                                out.push(Finding {
                                    lint: "cost-charge",
                                    path: f.file.clone(),
                                    line: *line,
                                    msg: format!(
                                        "`{}` returns successfully before its first \
                                         virtual-clock charge — this control-flow path \
                                         models the operation as free (guard it on a \
                                         degenerate size, or charge first)",
                                        g.qual_name(i)
                                    ),
                                });
                            }
                        }
                    }
                }
            }
            continue;
        }

        // Rule 2: call sites of cost-returning primitives must sit in
        // a function that (transitively) charges, or that returns the
        // `SimDuration` upward for its caller to charge.
        if COST_EXEMPT_PATHS.iter().any(|p| f.file.starts_with(p))
            || COST_RETURNING.contains(&f.name.as_str())
        {
            continue;
        }
        if f.ret.iter().any(|r| r == "SimDuration") || charges[i] {
            continue;
        }
        for ev in &f.events {
            if let Event::Call { path, line, .. } = ev {
                let name = path.last().map(String::as_str).unwrap_or("");
                if COST_RETURNING.contains(&name) {
                    out.push(Finding {
                        lint: "cost-charge",
                        path: f.file.clone(),
                        line: *line,
                        msg: format!(
                            "`{}` calls cost primitive `{name}` but neither charges a \
                             virtual clock on any path nor returns the SimDuration to \
                             its caller — the modelled cost is silently dropped",
                            g.qual_name(i)
                        ),
                    });
                }
            }
        }
    }
}
