//! Offline stand-in for `criterion`.
//!
//! Implements the subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `sample_size`, `bench_function`, `Bencher::iter`,
//! and the `criterion_group!`/`criterion_main!` macros — as a plain
//! wall-clock harness that prints mean/min per iteration. No warmup
//! modelling, no statistics beyond mean/min; good enough to run every
//! bench target offline and eyeball regressions.

use std::time::Instant;

pub use std::hint::black_box;

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    pub fn new() -> Self {
        Criterion { sample_size: 10 }
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size.max(1),
            _parent: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size.max(1);
        run_bench("", &id.into(), sample_size, f);
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&self.name, &id.into(), self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

fn run_bench<F>(group: &str, id: &str, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        samples,
        total_ns: 0,
        min_ns: u128::MAX,
        iters: 0,
    };
    f(&mut b);
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    if b.iters > 0 {
        let mean = b.total_ns / b.iters as u128;
        eprintln!(
            "bench {label:<40} mean {:>12} ns/iter  min {:>12} ns/iter  ({} iters)",
            mean, b.min_ns, b.iters
        );
    } else {
        eprintln!("bench {label:<40} (no iterations)");
    }
}

/// Passed to the closure given to `bench_function`.
pub struct Bencher {
    samples: usize,
    total_ns: u128,
    min_ns: u128,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            let dt = t0.elapsed().as_nanos();
            self.total_ns += dt;
            self.min_ns = self.min_ns.min(dt);
            self.iters += 1;
        }
    }

    /// Timed body with untimed per-iteration setup (the input is
    /// rebuilt outside the measured window each sample).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut f: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(f(input));
            let dt = t0.elapsed().as_nanos();
            self.total_ns += dt;
            self.min_ns = self.min_ns.min(dt);
            self.iters += 1;
        }
    }
}

/// Batching hint; the shim times one invocation per batch regardless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Defines a function that runs the listed bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::new();
            $($target(&mut c);)+
        }
    };
}

/// Defines `main` to run the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_requested_samples() {
        let mut c = Criterion::new();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut count = 0;
        group.bench_function("id", |b| b.iter(|| count += 1));
        group.finish();
        assert_eq!(count, 3);
    }
}
