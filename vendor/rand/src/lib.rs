//! Offline stand-in for `rand` 0.8.
//!
//! Provides `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::gen_range` over the integer/float range types the workspace
//! samples. The generator is SplitMix64, NOT the real `StdRng`
//! (ChaCha12): streams differ from upstream `rand`, but the contract
//! the workspace relies on — equal seeds give equal, well-distributed
//! streams — holds.

use std::ops::{Range, RangeInclusive};

/// SplitMix64-backed RNG with the `StdRng` name.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Construction from seeds (subset of rand's trait).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}

/// Types `Rng::gen_range` can sample from.
pub trait SampleRange {
    type Output;
    fn sample(self, next: &mut dyn FnMut() -> u64) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((next() as u128) % span) as i128;
                (self.start as i128 + r) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, next: &mut dyn FnMut() -> u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let r = ((next() as u128) % span) as i128;
                (lo as i128 + r) as $t
            }
        }
    )*};
}

int_sample_range!(i32, i64, u32, u64, usize, u8, u16);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, next: &mut dyn FnMut() -> u64) -> f64 {
        assert!(self.start < self.end, "empty range");
        let unit = (next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Subset of rand's `Rng` trait.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        let mut f = || self.next_u64();
        range.sample(&mut f)
    }

    /// A uniform f64 in [0, 1).
    fn gen_f64(&mut self) -> f64
    where
        Self: Sized,
    {
        self.gen_range(0.0..1.0)
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }
}

pub mod rngs {
    pub use crate::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let i = rng.gen_range(1..=4);
            assert!((1..=4).contains(&i));
            let f = rng.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&f));
            let u = rng.gen_range(0usize..10);
            assert!(u < 10);
        }
    }

    #[test]
    fn floats_cover_the_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let xs: Vec<f64> = (0..1000).map(|_| rng.gen_range(0.0..1.0)).collect();
        assert!(xs.iter().any(|&x| x < 0.1));
        assert!(xs.iter().any(|&x| x > 0.9));
    }
}
