//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Only the surface the workspace uses is provided: [`Mutex`] whose
//! `lock` returns the guard directly (no poison `Result`), and
//! [`Condvar`] whose `wait` takes `&mut MutexGuard`. Poisoned locks are
//! recovered rather than propagated — a panicking rank thread already
//! aborts the run at the `World::run` join.

use std::ops::{Deref, DerefMut};
use std::sync as ss;

/// Mutex with parking_lot's panic-free `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(ss::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
///
/// Holds the inner std guard in an `Option` so [`Condvar::wait`] can
/// temporarily take ownership (std's wait consumes the guard).
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized>(Option<ss::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(ss::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(ss::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(
            self.0.lock().unwrap_or_else(ss::PoisonError::into_inner),
        ))
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(ss::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0
            .as_ref()
            .expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0
            .as_mut()
            .expect("guard present outside Condvar::wait")
    }
}

/// Condition variable with parking_lot's `wait(&mut guard)` signature.
#[derive(Debug, Default)]
pub struct Condvar(ss::Condvar);

impl Condvar {
    pub fn new() -> Self {
        Condvar(ss::Condvar::new())
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present before wait");
        guard.0 = Some(
            self.0
                .wait(inner)
                .unwrap_or_else(ss::PoisonError::into_inner),
        );
    }

    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut started = lock.lock();
            while !*started {
                cvar.wait(&mut started);
            }
        });
        {
            let (lock, cvar) = &*pair;
            *lock.lock() = true;
            cvar.notify_all();
        }
        t.join().unwrap();
    }
}
