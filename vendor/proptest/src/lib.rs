//! Offline stand-in for `proptest`.
//!
//! Supports the subset the workspace's property tests use: the
//! `proptest!` macro over `fn name(arg in strategy, ...)` items,
//! numeric range strategies, tuple strategies, and
//! `prop::collection::vec`. Each test runs a fixed number of cases
//! drawn from a SplitMix64 stream seeded by the test name, so runs
//! are deterministic. No shrinking: a failing case panics with the
//! sampled inputs visible via the assertion message.

/// Number of random cases each `proptest!` test executes.
pub const NUM_CASES: usize = 64;

pub mod test_runner {
    /// Deterministic per-test RNG (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test name so each test gets a distinct,
        /// reproducible stream (FNV-1a over the name bytes).
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform f64 in [0, 1).
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values.
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let r = ((rng.next_u64() as u128) % span) as i128;
                    (self.start as i128 + r) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    let r = ((rng.next_u64() as u128) % span) as i128;
                    (lo as i128 + r) as $t
                }
            }
        )*};
    }

    int_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.next_f64() as f32 * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// Vec of values from `elem`, length drawn from `len`.
    pub struct VecStrategy<S> {
        pub(crate) elem: S,
        pub(crate) len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().sample(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod prop {
    pub mod collection {
        use crate::strategy::{Strategy, VecStrategy};
        use std::ops::Range;

        pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, len }
        }
    }
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::TestRng;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Runs each listed test function over `NUM_CASES` deterministic
/// random cases. Attributes written inside the block (`#[test]`, doc
/// comments) are re-emitted onto the generated zero-arg function.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng =
                    $crate::test_runner::TestRng::from_name(stringify!($name));
                for __case in 0..$crate::NUM_CASES {
                    let _ = __case;
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn samples_respect_bounds(
            a in 1usize..10,
            f in -2.0f64..2.0,
            pair in (0u8..4, 5u64..9),
            xs in prop::collection::vec(0i32..100, 1..8),
        ) {
            prop_assert!((1..10).contains(&a));
            prop_assert!((-2.0..2.0).contains(&f));
            prop_assert!(pair.0 < 4);
            prop_assert!((5..9).contains(&pair.1));
            prop_assert!(!xs.is_empty() && xs.len() < 8);
            for x in xs {
                prop_assert!((0..100).contains(&x));
            }
        }
    }

    #[test]
    fn streams_are_deterministic_per_name() {
        let mut a = TestRng::from_name("t");
        let mut b = TestRng::from_name("t");
        let mut c = TestRng::from_name("u");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
