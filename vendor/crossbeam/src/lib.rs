//! Offline stand-in for `crossbeam`, backed by `std::sync::mpsc`.
//!
//! The workspace only uses unbounded channels with blocking `recv` and
//! non-blocking `try_recv`; std's mpsc covers that exactly.

pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// Sending half of an unbounded channel.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    /// Receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }
    }

    /// An unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn roundtrip_and_try_recv() {
            let (tx, rx) = unbounded();
            tx.send(7).unwrap();
            assert_eq!(rx.recv().unwrap(), 7);
            assert!(matches!(rx.try_recv(), Err(TryRecvError::Empty)));
            let tx2 = tx.clone();
            tx2.send(8).unwrap();
            assert_eq!(rx.try_recv().unwrap(), 8);
        }
    }
}
