//! Command-line driver for the cooperative heterogeneous runner.
//!
//! ```text
//! heterosim [--mode default|mps|hetero|cpuonly] [--grid X,Y,Z]
//!           [--cycles N] [--full] [--node rzhasgpu|fixed|sierra]
//!           [--gpu-direct] [--diffusion KAPPA] [--multipolicy N]
//!           [--fraction F] [--no-balance] [--faults SPEC]
//!           [--rebalance every=N,hysteresis=X]
//!           [--scenario sedov|sod|noh|taylor-green]
//!           [--problem sedov|sod|perturbed] [--trace] [--csv]
//!           [--particles COUNT[,DRAG[,SEED]]]
//!           [--host-threads N] [--tile TY,TZ]
//!           [--trace-json PATH] [--metrics-json PATH]
//! ```
//!
//! `--scenario` selects one of the first-class problem setups (each
//! stressing a different kernel-size regime; see README Scenarios);
//! `--problem` remains as the lower-level selector and also accepts
//! the balancer's `perturbed` workload, which is not a scenario.
//! `--particles` enables the Lagrangian tracer phase: particles are
//! advected through the hydro field each cycle and migrate between
//! ranks through the coupler's all-to-all.
//!
//! `--tile` pins the y–z tile shape of the fused cache-blocked hydro
//! kernels (default: one-shot auto-tune probe). Physics and figures
//! are bitwise-independent of the choice.
//!
//! The `serve` subcommand starts the long-lived simulation server
//! (HTTP over pure-std TCP, content-hash result cache, bounded
//! admission, live `/metrics`):
//! ```text
//! heterosim serve [--addr HOST:PORT] [--workers N] [--queue N]
//!                 [--deadline-ms N] [--tile TY,TZ] [--max-requests N]
//! ```
//!
//! `--faults` takes a fault plan such as
//! `xfer.delay@rank1.cycle2:ns=200000;rank.loss@rank5.cycle4` (see the
//! README's Resilience section). `--no-balance` skips the §6.2 load
//! balancer and runs the mode's static split once — required for
//! byte-identical chaos reruns, since the balancer re-measures.
//! `--rebalance` enables the *online* measured-speed controller
//! instead (hetero mode only): the split is adjusted in-run every N
//! cycles from virtual-time measurements, so controller-enabled chaos
//! reruns stay byte-identical without `--no-balance`.
//!
//! Examples:
//! ```sh
//! cargo run --release --bin heterosim -- --mode hetero --grid 600,480,160
//! cargo run --release --bin heterosim -- --mode mps --grid 320,240,160 --trace
//! ```

use heterosim::core::{run_balanced, runner, ExecMode, NodeConfig, RunConfig, RunResult};
use heterosim::hydro::DiffusionConfig;
use heterosim::raja::Fidelity;

fn usage() -> ! {
    eprintln!(
        "usage: heterosim [--mode default|mps|hetero|cpuonly] [--grid X,Y,Z]\n\
         \x20                [--cycles N] [--full] [--node rzhasgpu|fixed|sierra]\n\
         \x20                [--gpu-direct] [--diffusion KAPPA] [--multipolicy N]\n\
         \x20                [--fraction F] [--no-balance] [--faults SPEC]\n\
         \x20                [--rebalance every=N,hysteresis=X]\n\
         \x20                [--scenario sedov|sod|noh|taylor-green]\n\
         \x20                [--problem sedov|sod|perturbed] [--trace] [--csv]\n\
         \x20                [--particles COUNT[,DRAG[,SEED]]]\n\
         \x20                [--host-threads N] [--tile TY,TZ]\n\
         \x20                [--trace-json PATH] [--metrics-json PATH]\n\
         \x20      heterosim serve [--addr HOST:PORT] [--workers N] [--queue N]\n\
         \x20                [--deadline-ms N] [--tile TY,TZ] [--max-requests N]"
    );
    std::process::exit(2)
}

fn parse_grid(s: &str) -> (usize, usize, usize) {
    let parts: Vec<usize> = s
        .split(',')
        .map(|p| p.trim().parse().unwrap_or_else(|_| usage()))
        .collect();
    match parts.as_slice() {
        [x, y, z] => (*x, *y, *z),
        _ => usage(),
    }
}

fn serve_usage() -> ! {
    eprintln!(
        "usage: heterosim serve [--addr HOST:PORT] [--workers N] [--queue N]\n\
         \x20                      [--deadline-ms N] [--tile TY,TZ] [--max-requests N]"
    );
    std::process::exit(2)
}

/// `heterosim serve ...`: run the simulation server until killed (or
/// until `--max-requests` connections, for CI smoke tests).
fn serve_main(args: &[String]) -> ! {
    let mut addr = "127.0.0.1:8080".to_string();
    let mut cfg = heterosim::serve::ServerConfig::default();
    let mut max_requests: Option<usize> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = || it.next().cloned().unwrap_or_else(|| serve_usage());
        match arg.as_str() {
            "--addr" => addr = value(),
            "--workers" => cfg.workers = value().parse().unwrap_or_else(|_| serve_usage()),
            "--queue" => cfg.queue_capacity = value().parse().unwrap_or_else(|_| serve_usage()),
            "--deadline-ms" => {
                let ms: u64 = value().parse().unwrap_or_else(|_| serve_usage());
                cfg.default_deadline = Some(std::time::Duration::from_millis(ms));
            }
            "--tile" => {
                let v = value().replace(',', "x");
                cfg.tile = Some(
                    heterosim::core::calib::parse_tile_spec(&v).unwrap_or_else(|e| {
                        eprintln!("bad --tile: {e}");
                        serve_usage()
                    }),
                );
            }
            "--max-requests" => {
                max_requests = Some(value().parse().unwrap_or_else(|_| serve_usage()))
            }
            "--help" | "-h" => serve_usage(),
            other => {
                eprintln!("unknown serve argument: {other}");
                serve_usage()
            }
        }
    }
    let listener = std::net::TcpListener::bind(&addr).unwrap_or_else(|e| {
        eprintln!("cannot bind {addr}: {e}");
        std::process::exit(1);
    });
    let server = heterosim::serve::Server::new(cfg);
    eprintln!(
        "serving on http://{} (tile {}; endpoints: /healthz /metrics /run /figure/<id>)",
        listener.local_addr().map(|a| a.to_string()).unwrap_or(addr),
        heterosim::core::calib::tile_spec(server.tile()),
    );
    if let Err(e) = heterosim::serve::http::serve(&server, listener, max_requests) {
        eprintln!("serve failed: {e}");
        std::process::exit(1);
    }
    std::process::exit(0)
}

fn main() {
    let serve_args: Vec<String> = std::env::args().skip(1).collect();
    if serve_args.first().map(String::as_str) == Some("serve") {
        serve_main(&serve_args[1..]);
    }

    let mut mode = ExecMode::hetero();
    let mut grid = (320, 480, 160);
    let mut cycles = 10u64;
    let mut fidelity = Fidelity::CostOnly;
    let mut node = NodeConfig::rzhasgpu();
    let mut gpu_direct = false;
    let mut diffusion = None;
    let mut multipolicy = 0u64;
    let mut fraction: Option<f64> = None;
    let mut trace = false;
    let mut csv = false;
    let mut trace_json: Option<String> = None;
    let mut metrics_json: Option<String> = None;
    let mut problem_choice = heterosim::core::runner::Problem::default();
    let mut host_threads = 1usize;
    let mut tile: Option<[usize; 2]> = None;
    let mut no_balance = false;
    let mut faults: Option<heterosim::core::faults::FaultPlan> = None;
    let mut rebalance: Option<heterosim::core::RebalanceConfig> = None;
    let mut particles: Option<heterosim::particles::ParticlesConfig> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = || it.next().cloned().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--mode" => {
                mode = match value().as_str() {
                    "default" => ExecMode::Default,
                    "mps" => ExecMode::mps4(),
                    "hetero" => ExecMode::hetero(),
                    "cpuonly" => ExecMode::CpuOnly,
                    _ => usage(),
                }
            }
            "--grid" => grid = parse_grid(&value()),
            "--cycles" => cycles = value().parse().unwrap_or_else(|_| usage()),
            "--full" => fidelity = Fidelity::Full,
            "--node" => {
                node = match value().as_str() {
                    "rzhasgpu" => NodeConfig::rzhasgpu(),
                    "fixed" => NodeConfig::rzhasgpu_fixed_compiler(),
                    "sierra" => NodeConfig::sierra_ea(),
                    _ => usage(),
                }
            }
            "--gpu-direct" => gpu_direct = true,
            "--diffusion" => {
                diffusion = Some(DiffusionConfig {
                    kappa: value().parse().unwrap_or_else(|_| usage()),
                })
            }
            "--multipolicy" => multipolicy = value().parse().unwrap_or_else(|_| usage()),
            "--fraction" => fraction = Some(value().parse().unwrap_or_else(|_| usage())),
            "--trace" => trace = true,
            "--csv" => csv = true,
            "--no-balance" => no_balance = true,
            "--faults" => {
                faults = Some(
                    heterosim::core::faults::FaultPlan::parse(&value()).unwrap_or_else(|e| {
                        eprintln!("bad --faults spec: {e}");
                        usage()
                    }),
                )
            }
            "--rebalance" => {
                rebalance = Some(
                    heterosim::core::RebalanceConfig::parse(&value()).unwrap_or_else(|e| {
                        eprintln!("bad --rebalance spec: {e}");
                        usage()
                    }),
                )
            }
            "--host-threads" => host_threads = value().parse().unwrap_or_else(|_| usage()),
            "--tile" => {
                let v = value();
                let parts: Vec<usize> = v
                    .split(',')
                    .map(|p| p.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
                tile = match parts.as_slice() {
                    [ty, tz] => Some([*ty, *tz]),
                    _ => usage(),
                };
            }
            "--trace-json" => trace_json = Some(value()),
            "--metrics-json" => metrics_json = Some(value()),
            "--problem" => {
                problem_choice = match value().as_str() {
                    "sedov" => heterosim::core::runner::Problem::default(),
                    "sod" => heterosim::core::runner::Problem::Sod(Default::default()),
                    "perturbed" => heterosim::core::runner::Problem::Perturbed(Default::default()),
                    _ => usage(),
                }
            }
            "--scenario" => {
                let v = value();
                let scenario = heterosim::core::Scenario::parse(&v).unwrap_or_else(|e| {
                    eprintln!("bad --scenario: {e}");
                    usage()
                });
                problem_choice = scenario.problem();
            }
            "--particles" => {
                let v = value();
                let parts: Vec<&str> = v.split(',').collect();
                let mut pcfg = heterosim::particles::ParticlesConfig::default();
                match parts.as_slice() {
                    [c] => pcfg.count = c.trim().parse().unwrap_or_else(|_| usage()),
                    [c, d] => {
                        pcfg.count = c.trim().parse().unwrap_or_else(|_| usage());
                        pcfg.drag = d.trim().parse().unwrap_or_else(|_| usage());
                    }
                    [c, d, s] => {
                        pcfg.count = c.trim().parse().unwrap_or_else(|_| usage());
                        pcfg.drag = d.trim().parse().unwrap_or_else(|_| usage());
                        pcfg.seed = s.trim().parse().unwrap_or_else(|_| usage());
                    }
                    _ => usage(),
                }
                particles = Some(pcfg);
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage()
            }
        }
    }

    if let (ExecMode::Heterogeneous { cpu_fraction }, Some(f)) = (&mut mode, fraction) {
        *cpu_fraction = Some(f);
    }
    let cfg = RunConfig {
        grid,
        mode,
        node,
        cycles,
        fidelity,
        gpu_direct,
        diffusion,
        multipolicy_threshold: multipolicy,
        trace,
        telemetry: trace_json.is_some() || metrics_json.is_some(),
        problem: problem_choice,
        faults,
        rebalance,
        host_threads,
        tile,
        particles,
    };

    // The balancer re-measures between iterations; a fault plan is
    // keyed to specific ranks and cycles, so chaos runs use the
    // static split (as does --no-balance). The online controller is a
    // single in-run loop — never wrapped in the restart balancer.
    let run_once = no_balance || cfg.faults.is_some() || cfg.rebalance.is_some();
    let (result, lb_history) = if run_once {
        match runner::run(&cfg) {
            Ok(r) => (r, Vec::new()),
            Err(e) => {
                eprintln!("run failed: {e}");
                std::process::exit(1);
            }
        }
    } else {
        match run_balanced(&cfg) {
            Ok((r, lb)) => (r, lb.history),
            Err(e) => {
                eprintln!("run failed: {e}");
                std::process::exit(1);
            }
        }
    };

    if let Some(summary) = &result.telemetry {
        if let Some(path) = &trace_json {
            if let Err(e) = std::fs::write(path, summary.to_chrome_json()) {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("wrote Chrome trace to {path} (load in ui.perfetto.dev)");
        }
        if let Some(path) = &metrics_json {
            if let Err(e) = std::fs::write(path, summary.to_metrics_json()) {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("wrote metrics to {path}");
        }
    }

    if csv {
        println!("{}", RunResult::csv_header());
        println!("{}", result.csv_row());
        return;
    }

    println!("mode:            {}", result.mode_label);
    println!(
        "grid:            {} x {} x {} = {} zones",
        grid.0, grid.1, grid.2, result.zones
    );
    println!("node:            {}", cfg.node.name);
    println!("cycles:          {}", result.cycles);
    println!("ranks:           {}", result.ranks.len());
    println!(
        "runtime:         {:.6} simulated seconds",
        result.runtime.as_secs_f64()
    );
    if result.cpu_fraction > 0.0 {
        let (label, history) = if result.balance_history.is_empty() {
            ("balancer", &lb_history)
        } else {
            ("rebalancer", &result.balance_history)
        };
        println!(
            "CPU share:       {:.2}% ({label}: {:?})",
            result.cpu_fraction * 100.0,
            history
                .iter()
                .map(|f| (f * 1e4).round() / 1e4)
                .collect::<Vec<_>>()
        );
    }
    println!("kernel launches: {}", result.total_launches());
    println!("MPI bytes:       {}", result.total_bytes_sent());
    if let Some(sc) = &result.scenario {
        match sc.error {
            Some(err) => println!("scenario:        {} ({} = {err:.6})", sc.name, sc.metric),
            None => println!("scenario:        {}", sc.name),
        }
    }
    if let Some(p) = &result.particles {
        println!(
            "particles:       {} live, {} migrations, momentum [{:+.4e} {:+.4e} {:+.4e}]",
            p.count, p.migrated, p.momentum[0], p.momentum[1], p.momentum[2]
        );
    }
    if matches!(cfg.mode, ExecMode::Heterogeneous { .. }) {
        // Context: what the other modes would cost.
        for other in [ExecMode::Default, ExecMode::mps4()] {
            let other_cfg = RunConfig {
                mode: other,
                trace: false,
                faults: None,
                rebalance: None,
                ..cfg.clone()
            };
            if let Ok(r) = runner::run(&other_cfg) {
                println!(
                    "vs {:22} {:.6} s ({:+.1}%)",
                    r.mode_label,
                    r.runtime.as_secs_f64(),
                    (result.runtime.as_secs_f64() / r.runtime.as_secs_f64() - 1.0) * 100.0
                );
            }
        }
    }
    println!();
    println!("{}", result.breakdown_table());
    if let Some(t) = &result.trace {
        println!("timeline (G = GPU-driving rank busy, C = CPU rank busy, . = waiting):");
        println!("{}", t.render_gantt(96));
    }
}
