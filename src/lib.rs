//! # heterosim
//!
//! Cooperative CPU+GPU computation in a multi-physics simulation: a
//! simulated-node reproduction of *"Experiences Using CPUs and GPUs
//! for Cooperative Computation in a Multi-Physics Simulation"* (Olga
//! Pearce, ICPP 2018 Companion / P2S2).
//!
//! This facade crate re-exports the workspace members under one
//! namespace:
//!
//! * [`time`] — virtual clocks and statistics,
//! * [`gpu`] — the CUDA-like device simulator (contexts, streams,
//!   MPS, memory),
//! * [`mpi`] — the in-process MPI runtime,
//! * [`mesh`] — grids, subdomains, decompositions, halo plans,
//! * [`raja`] — the portability layer (`forall`, policies, pools),
//! * [`hydro`] — the hydro mini-app (Sedov, Sod, Noh, Taylor–Green),
//! * [`particles`] — Lagrangian tracer/drag particles advected
//!   through the hydro field,
//! * [`core`] — the cooperative heterogeneous runner (the paper's
//!   contribution),
//! * [`serve`] — simulation-as-a-service: content-hash result cache,
//!   bounded admission, live `/metrics`,
//! * `bench` (hsim_bench) — figure sweeps and plotting.
//!
//! ## Quickstart
//!
//! ```
//! use heterosim::core::{run, ExecMode, RunConfig};
//!
//! let cfg = RunConfig::sweep((64, 48, 32), ExecMode::hetero());
//! let result = run(&cfg).expect("single-node run");
//! assert!(result.runtime.as_secs_f64() > 0.0);
//! println!("{}", result.breakdown_table());
//! ```

#![forbid(unsafe_code)]

pub use hsim_bench as bench;
pub use hsim_core as core;
pub use hsim_gpu as gpu;
pub use hsim_hydro as hydro;
pub use hsim_mesh as mesh;
pub use hsim_mpi as mpi;
pub use hsim_particles as particles;
pub use hsim_raja as raja;
pub use hsim_serve as serve;
pub use hsim_time as time;
