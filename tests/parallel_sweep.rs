//! Acceptance tests for the parallel sweep engine: fanning a figure
//! over a job pool must never change a byte of its output, and
//! infeasible points must be recorded on the data instead of lost to
//! stderr.

use heterosim::bench::{paper_modes, run_figure_jobs};
use heterosim::core::figures::{FigureSpec, SweepAxis};

/// A trimmed fig13-style sweep: every mode runs every point.
fn feasible_spec() -> FigureSpec {
    FigureSpec {
        id: "par_test",
        caption: "parallel sweep determinism probe",
        sweep: SweepAxis::X,
        values: vec![64, 96, 128],
        fixed: (48, 32),
        scenario: heterosim::core::Scenario::Sedov,
    }
}

/// A sweep whose fixed cross-section (y=4, z=4) is too thin for the
/// 16-rank modes: Default's 4 blocks fit, but MPS cannot split the
/// axis 4 ways and Heterogeneous cannot carve CPU planes from it.
fn infeasible_spec() -> FigureSpec {
    FigureSpec {
        id: "skip_test",
        caption: "sweep with modes that cannot decompose",
        sweep: SweepAxis::X,
        values: vec![64],
        fixed: (4, 4),
        scenario: heterosim::core::Scenario::Sedov,
    }
}

#[test]
fn job_count_never_changes_figure_bytes() {
    let spec = feasible_spec();
    let modes = paper_modes();
    let serial = run_figure_jobs(&spec, &modes, 1);
    for jobs in [2, 8] {
        let parallel = run_figure_jobs(&spec, &modes, jobs);
        assert_eq!(
            serial.to_csv(),
            parallel.to_csv(),
            "--jobs {jobs} changed the CSV"
        );
        assert_eq!(
            serial.to_markdown(),
            parallel.to_markdown(),
            "--jobs {jobs} changed the markdown"
        );
        assert_eq!(serial.chart_series(), parallel.chart_series());
    }
}

#[test]
fn oversubscribed_pool_handles_more_jobs_than_tasks() {
    // 3 modes × 1 point = 3 tasks with 32 requested jobs: the worker
    // count clamps to the task count and output is still identical.
    let spec = FigureSpec {
        values: vec![96],
        ..feasible_spec()
    };
    let modes = paper_modes();
    let serial = run_figure_jobs(&spec, &modes, 1);
    let flooded = run_figure_jobs(&spec, &modes, 32);
    assert_eq!(serial.to_csv(), flooded.to_csv());
    assert!(serial.skipped.is_empty());
}

#[test]
fn infeasible_points_are_recorded_not_lost() {
    let spec = infeasible_spec();
    let data = run_figure_jobs(&spec, &paper_modes(), 4);
    // Default succeeds; MPS and Heterogeneous cannot decompose.
    assert_eq!(data.series.len(), 3);
    let by_key = |key: &str| {
        data.series
            .iter()
            .find(|s| s.mode.key() == key)
            .expect("series present")
    };
    assert_eq!(by_key("default").points.len(), 1);
    assert!(by_key("mps4").points.is_empty());
    assert!(by_key("hetero").points.is_empty());
    assert_eq!(data.skipped.len(), 2, "{:?}", data.skipped);
    for s in &data.skipped {
        assert_eq!(s.grid, (64, 4, 4));
        assert_eq!(s.swept_dim, 64);
        assert!(!s.reason.is_empty(), "skip must carry the runner's error");
    }
    // The footer surfaces them in the markdown artifact...
    let md = data.to_markdown();
    assert!(md.contains("2 infeasible point(s) skipped"));
    assert!(md.contains("64×4×4"));
    // ...while the CSV stays strictly tabular: header + the one
    // Default row, no skip annotations.
    assert_eq!(data.to_csv().lines().count(), 2);
}

#[test]
fn skip_order_is_deterministic_across_job_counts() {
    let spec = infeasible_spec();
    let a = run_figure_jobs(&spec, &paper_modes(), 1);
    let b = run_figure_jobs(&spec, &paper_modes(), 8);
    let fmt = |d: &heterosim::bench::FigureData| {
        d.skipped
            .iter()
            .map(|s| format!("{}:{:?}:{}", s.mode, s.grid, s.reason))
            .collect::<Vec<_>>()
    };
    assert_eq!(fmt(&a), fmt(&b));
    assert_eq!(a.to_markdown(), b.to_markdown());
}
