//! Acceptance tests for the reproduced evaluation figures: the
//! *shapes* the paper reports (who wins, by what factor, where the
//! crossovers fall) must hold. See DESIGN.md §5.

use heterosim::core::{run, run_balanced, ExecMode, RunConfig};

fn runtime(grid: (usize, usize, usize), mode: ExecMode) -> f64 {
    let cfg = RunConfig::sweep(grid, mode);
    let (r, _) = run_balanced(&cfg).expect("sweep point runs");
    r.runtime.as_secs_f64()
}

/// Figure 12: the Default mode's runtime slope kinks at ≈ 37 M zones;
/// the 16-rank modes stay linear.
#[test]
fn fig12_default_kinks_at_37m_zones() {
    // x = 320, z = 320; y sweeps. Pre-kink slope from 20.5M → 28.7M,
    // post-kink slope from 36.9M → 41.0M.
    let t200 = runtime((320, 200, 320), ExecMode::Default);
    let t280 = runtime((320, 280, 320), ExecMode::Default);
    let t360 = runtime((320, 360, 320), ExecMode::Default);
    let t400 = runtime((320, 400, 320), ExecMode::Default);
    let pre_slope = (t280 - t200) / 80.0;
    let post_slope = (t400 - t360) / 40.0;
    assert!(
        post_slope > pre_slope * 1.3,
        "Default slope must steepen past the kink: pre {pre_slope:.6}, post {post_slope:.6}"
    );

    let m360 = runtime((320, 360, 320), ExecMode::mps4());
    let m400 = runtime((320, 400, 320), ExecMode::mps4());
    let m200 = runtime((320, 200, 320), ExecMode::mps4());
    let m280 = runtime((320, 280, 320), ExecMode::mps4());
    let mps_pre = (m280 - m200) / 80.0;
    let mps_post = (m400 - m360) / 40.0;
    assert!(
        mps_post < mps_pre * 1.15,
        "MPS must stay linear: pre {mps_pre:.6}, post {mps_post:.6}"
    );
}

/// Figure 12: at the smallest y the CPU ranks cannot take a small
/// enough share (min 15% of zones) and Heterogeneous loses badly.
#[test]
fn fig12_hetero_loses_at_small_y() {
    let grid = (320, 40, 320);
    let d = runtime(grid, ExecMode::Default);
    let h = runtime(grid, ExecMode::hetero());
    assert!(
        h > d * 1.05,
        "CPU-overloaded Heterogeneous must lose at y=40: hetero {h:.4} vs default {d:.4}"
    );
}

/// Figure 13 (y = 240, z = 320): the y-dimension is too small to carve
/// small enough CPU slabs — Heterogeneous is slower than Default in
/// the mid-sweep; MPS overlap wins at small x.
#[test]
fn fig13_hetero_cpu_bound_and_mps_wins_small_x() {
    let mid = (250, 240, 320);
    let d = runtime(mid, ExecMode::Default);
    let h = runtime(mid, ExecMode::hetero());
    assert!(
        h > d * 1.02,
        "Heterogeneous must be CPU-bound at y=240: hetero {h:.4} vs default {d:.4}"
    );

    let small_x = (50, 240, 320);
    let d2 = runtime(small_x, ExecMode::Default);
    let m2 = runtime(small_x, ExecMode::mps4());
    assert!(
        m2 < d2 * 0.9,
        "MPS must win clearly at x=50: mps {m2:.4} vs default {d2:.4}"
    );
}

/// Figure 14 (y = 240, z = 160): Heterogeneous still loses; Default
/// and MPS are similar at large x.
#[test]
fn fig14_hetero_still_loses_default_mps_similar() {
    let grid = (500, 240, 160);
    let d = runtime(grid, ExecMode::Default);
    let h = runtime(grid, ExecMode::hetero());
    let m = runtime(grid, ExecMode::mps4());
    assert!(h > d, "hetero {h:.4} must exceed default {d:.4}");
    let ratio = m / d;
    assert!(
        (0.9..1.15).contains(&ratio),
        "Default and MPS similar at large x: ratio {ratio:.3}"
    );
}

/// Figure 16 (y = 360, z = 160): kernels fill the GPU on their own, so
/// MPS cannot overlap and only pays its overhead.
#[test]
fn fig16_mps_loses_at_large_x() {
    let grid = (525, 360, 160);
    let d = runtime(grid, ExecMode::Default);
    let m = runtime(grid, ExecMode::mps4());
    assert!(
        m > d,
        "MPS must lose for device-filling kernels: mps {m:.4} vs default {d:.4}"
    );
}

/// Figure 17 (y = 480, z = 320, small x): MPS best, Heterogeneous
/// close behind, Default worst.
#[test]
fn fig17_ordering_mps_hetero_default() {
    let grid = (120, 480, 320);
    let d = runtime(grid, ExecMode::Default);
    let m = runtime(grid, ExecMode::mps4());
    let h = runtime(grid, ExecMode::hetero());
    assert!(m < d, "MPS best at small x: {m:.4} vs default {d:.4}");
    assert!(h < d, "Hetero beats Default at small x: {h:.4} vs {d:.4}");
    assert!(
        m <= h * 1.02,
        "MPS at least matches Hetero: {m:.4} vs {h:.4}"
    );
}

/// Figure 18 (y = 480, z = 160): the Heterogeneous mode's best case —
/// it tracks Default before the kink and wins by 10–25% (the paper's
/// "up to 18%") past it, scaling linearly.
#[test]
fn fig18_hetero_gains_up_to_18_percent_past_the_kink() {
    // Before the kink: within a few percent of Default.
    let pre = (300, 480, 160); // 23 M zones
    let d_pre = runtime(pre, ExecMode::Default);
    let h_pre = runtime(pre, ExecMode::hetero());
    let pre_ratio = h_pre / d_pre;
    assert!(
        (0.93..1.05).contains(&pre_ratio),
        "pre-kink Hetero must track Default: ratio {pre_ratio:.3}"
    );

    // Past the kink: a 10–25% win.
    let post = (600, 480, 160); // 46 M zones
    let d_post = runtime(post, ExecMode::Default);
    let h_post = runtime(post, ExecMode::hetero());
    let gain = 1.0 - h_post / d_post;
    assert!(
        (0.10..0.25).contains(&gain),
        "post-kink Heterogeneous gain {:.1}% should bracket the paper's 18%",
        gain * 100.0
    );
}

/// The Heterogeneous mode's CPU share lands at the paper's 1–2% (the
/// compiler bug caps the effective CPU speed).
#[test]
fn hetero_cpu_share_is_one_to_two_percent_in_the_best_case() {
    let cfg = RunConfig::sweep((600, 480, 160), ExecMode::hetero());
    let (r, _) = run_balanced(&cfg).expect("hetero runs");
    assert!(
        (0.008..0.035).contains(&r.cpu_fraction),
        "CPU share {:.3}% should be 1-2ish%",
        r.cpu_fraction * 100.0
    );
}

/// CpuOnly (Figure 1) is far slower than any GPU mode — the reason the
/// porting effort focuses on the accelerators.
#[test]
fn cpu_only_mode_is_not_competitive() {
    let grid = (160, 240, 160);
    let c = runtime(grid, ExecMode::CpuOnly);
    let d = runtime(grid, ExecMode::Default);
    assert!(
        c > d * 3.0,
        "16 CPU cores must be several times slower than 4 GPUs: {c:.4} vs {d:.4}"
    );
}

/// GPU-direct (§5.3 future work) helps, never hurts.
#[test]
fn gpu_direct_toggle_is_monotone() {
    let mut cfg = RunConfig::sweep((320, 240, 160), ExecMode::mps4());
    let staged = run(&cfg).expect("staged").runtime;
    cfg.gpu_direct = true;
    let direct = run(&cfg).expect("direct").runtime;
    assert!(direct <= staged, "gpu-direct {direct} vs staged {staged}");
}
