//! Property-based tests over the core data structures and invariants
//! of the stack (proptest).

use proptest::prelude::*;

use heterosim::gpu::{Job, RateSharingTimeline};
use heterosim::mesh::decomp::weighted::{weighted_hetero_decomp, WeightedConfig};
use heterosim::mesh::decomp::{block_decomp, block_decomp_yz};
use heterosim::mesh::{Centering, Field, GlobalGrid, HaloPlan, Side, Subdomain};
use heterosim::time::{SimDuration, SimTime, Welford};

proptest! {
    /// Any block decomposition covers the grid exactly once.
    #[test]
    fn block_decomposition_always_valid(
        nx in 4usize..40,
        ny in 4usize..40,
        nz in 4usize..40,
        n in 1usize..17,
    ) {
        let grid = GlobalGrid::new(nx, ny, nz);
        // Skip infeasible splits (more parts than zones on an axis).
        let d = std::panic::catch_unwind(|| block_decomp(grid, n, 1));
        if let Ok(d) = d {
            prop_assert!(d.validate().is_ok(), "{:?}", d.validate());
            prop_assert_eq!(d.len(), n);
        }
    }

    /// The x-pinned decomposition never cuts x and stays valid.
    #[test]
    fn yz_decomposition_never_cuts_x(
        nx in 4usize..64,
        ny in 8usize..64,
        nz in 8usize..64,
        n in 1usize..9,
    ) {
        let grid = GlobalGrid::new(nx, ny, nz);
        let d = std::panic::catch_unwind(|| block_decomp_yz(grid, n, 1));
        if let Ok(d) = d {
            prop_assert!(d.validate().is_ok());
            for s in &d.domains {
                prop_assert_eq!(s.extent(0), nx);
            }
        }
    }

    /// The weighted heterogeneous decomposition is valid for any
    /// feasible fraction, and its realized CPU fraction respects the
    /// one-plane-per-rank minimum.
    #[test]
    fn weighted_decomposition_valid_and_floored(
        ny in 40usize..200,
        fraction in 0.0f64..0.4,
    ) {
        let grid = GlobalGrid::new(64, ny, 64);
        let cfg = WeightedConfig {
            n_gpus: 4,
            cpu_per_gpu: 3,
            cpu_fraction: fraction,
            carve_axis: 1,
            ghost: 1,
            pin_x: true,
        };
        match weighted_hetero_decomp(grid, &cfg) {
            Ok(d) => {
                prop_assert!(d.validate().is_ok());
                prop_assert_eq!(d.len(), 16);
                // Every CPU rank got at least one plane of its block.
                let block_y = d.domains[0].extent(1) + {
                    // GPU block + its slab span the whole block.
                    let cpu_zones: usize = (4..7)
                        .map(|r| d.domains[r].extent(1))
                        .sum();
                    cpu_zones
                };
                prop_assert!(block_y >= 4);
                for &r in &d.cpu_ranks() {
                    prop_assert!(d.domains[r].extent(1) >= 1);
                }
            }
            Err(_) => {
                // Only legitimate when the carve cannot fit.
                prop_assert!(ny / 2 <= 3 || fraction >= 0.99);
            }
        }
    }

    /// Halo plans are symmetric: every exchange appears in both
    /// endpoints' lists, and per-rank areas sum to twice the total.
    #[test]
    fn halo_plan_is_symmetric(
        nx in 8usize..32,
        ny in 8usize..32,
        nz in 8usize..32,
        n in 2usize..13,
    ) {
        let grid = GlobalGrid::new(nx, ny, nz);
        if let Ok(d) = std::panic::catch_unwind(|| block_decomp(grid, n, 1)) {
            let plan = HaloPlan::build(&d);
            let per_rank: u64 = (0..n).map(|r| plan.area_for(r)).sum();
            prop_assert_eq!(per_rank, 2 * plan.total_area());
            for ex in plan.exchanges() {
                prop_assert!(ex.a < n && ex.b < n && ex.a != ex.b);
                prop_assert!(ex.area() > 0);
            }
        }
    }

    /// Field pack/unpack roundtrips: packing a face and unpacking it
    /// into a matching neighbor's ghost layer preserves every value.
    #[test]
    fn field_pack_unpack_roundtrip(
        ex in 2usize..8,
        ey in 2usize..8,
        ez in 2usize..8,
        axis in 0usize..3,
        seed in 0u64..1000,
    ) {
        let left = Subdomain::new([0, 0, 0], [ex, ey, ez], 1);
        let mut f = Field::new(&left, Centering::Zone);
        let mut rng = heterosim::time::SplitMix64::new(seed);
        for k in 0..ez {
            for j in 0..ey {
                for i in 0..ex {
                    f.set(i, j, k, rng.next_f64());
                }
            }
        }
        let packed = f.pack_face(axis, Side::High, 1);
        prop_assert_eq!(packed.len(), f.face_len(axis, 1));
        // Unpack into a clone's opposite ghost layer and verify the
        // values line up with the source face.
        let mut g = f.clone();
        g.unpack_ghost(axis, Side::Low, 1, &packed);
        let repacked = {
            let mut lo = [0usize; 3];
            let mut hi = g.dims();
            hi[axis] = 1;
            let mut lo2 = lo;
            let mut hi2 = hi;
            for a in 0..3 {
                if a != axis {
                    lo2[a] = 1;
                    hi2[a] = g.dims()[a] - 1;
                }
            }
            lo = lo2;
            hi = hi2;
            g.pack_box(lo, hi)
        };
        prop_assert_eq!(repacked.len(), packed.len());
        for (a, b) in repacked.iter().zip(&packed) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Rate-sharing timeline conservation: total completed work never
    /// exceeds capacity × makespan, and every job ends after it starts.
    #[test]
    fn timeline_conserves_work(
        jobs in prop::collection::vec(
            (0u64..4, 0u64..1_000_000u64, 1u64..1_000_000u64, 0.05f64..1.0),
            1..12,
        ),
    ) {
        let jobs: Vec<Job> = jobs
            .into_iter()
            .enumerate()
            .map(|(i, (stream, arrival_us, work_us, rate))| Job {
                id: i as u64,
                stream,
                arrival: SimTime::from_nanos(arrival_us * 1000),
                work: work_us as f64 * 1e-6,
                max_rate: rate,
            })
            .collect();
        let tl = RateSharingTimeline::new();
        let out = tl.simulate(&jobs);
        prop_assert_eq!(out.len(), jobs.len());
        let mut makespan = SimTime::ZERO;
        let mut first_start = u64::MAX;
        let mut total_work = 0.0;
        for (o, j) in out.iter().zip(&jobs) {
            prop_assert!(o.end >= o.start, "job {} inverted", o.id);
            prop_assert!(o.start >= j.arrival, "job {} starts early", o.id);
            makespan = makespan.merge(o.end);
            first_start = first_start.min(o.start.as_nanos());
            total_work += j.work;
        }
        let window = (makespan.as_nanos() - first_start) as f64 * 1e-9;
        prop_assert!(
            total_work <= window * 1.0 + 1e-6,
            "work {total_work} exceeds capacity x window {window}"
        );
    }

    /// Welford merge is order-independent (within fp tolerance).
    #[test]
    fn welford_merge_is_associative_enough(
        xs in prop::collection::vec(-1e3f64..1e3, 2..60),
        split in 1usize..59,
    ) {
        let split = split.min(xs.len() - 1);
        let mut whole = Welford::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..split] {
            a.push(x);
        }
        for &x in &xs[split..] {
            b.push(x);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-9);
        prop_assert!((a.variance() - whole.variance()).abs() < 1e-6);
    }

    /// Durations: saturating arithmetic never panics and ordering is
    /// preserved under addition.
    #[test]
    fn duration_arithmetic_is_total(a in 0u64..u64::MAX, b in 0u64..u64::MAX) {
        let da = SimDuration::from_nanos(a);
        let db = SimDuration::from_nanos(b);
        let sum = da + db;
        prop_assert!(sum >= da.max(db));
        let diff = da - db;
        prop_assert!(diff <= da);
    }
}

proptest! {
    /// The device heap never loses bytes: random alloc/free sequences
    /// keep `used + free == capacity`, frees restore contiguity, and
    /// double frees are always rejected.
    #[test]
    fn device_heap_invariants(ops in prop::collection::vec((0u8..4, 1u64..64), 1..200)) {
        use heterosim::gpu::memory::DeviceHeap;
        let capacity = 1u64 << 20;
        let mut heap = DeviceHeap::new(capacity);
        let mut live = Vec::new();
        for (op, size_kb) in ops {
            match op {
                // Allocate.
                0 | 1 => {
                    if let Ok(a) = heap.alloc(size_kb * 1024) {
                        live.push(a);
                    }
                }
                // Free the most recent.
                2 => {
                    if let Some(a) = live.pop() {
                        heap.free(a).expect("live allocation frees");
                    }
                }
                // Free the oldest (exercises coalescing paths).
                _ => {
                    if !live.is_empty() {
                        let a = live.remove(0);
                        heap.free(a).expect("live allocation frees");
                    }
                }
            }
            let used: u64 = live.iter().map(|a| a.size).sum();
            prop_assert_eq!(heap.used(), used);
            prop_assert_eq!(heap.free_bytes(), capacity - used);
            prop_assert!(heap.largest_free_block() <= heap.free_bytes());
        }
        // Drain: full capacity must come back in one block.
        for a in live.drain(..) {
            heap.free(a).expect("drain");
        }
        prop_assert_eq!(heap.largest_free_block(), capacity);
    }

    /// The pool enforces LIFO and reset always restores the full slab.
    #[test]
    fn memory_pool_discipline(sizes in prop::collection::vec(1u64..1024, 1..50)) {
        use heterosim::gpu::memory::MemoryPool;
        let mut pool = MemoryPool::new(1 << 20);
        let mut live = Vec::new();
        for s in &sizes {
            if let Ok(a) = pool.alloc(s * 256) {
                live.push(a);
            }
        }
        // Out-of-order free must fail while ≥2 allocations live.
        if live.len() >= 2 {
            let first = live[0];
            prop_assert!(pool.free(first).is_err());
        }
        // LIFO drain succeeds.
        while let Some(a) = live.pop() {
            pool.free(a).expect("LIFO free");
        }
        prop_assert_eq!(pool.in_use(), 0);
        pool.reset();
        prop_assert!(pool.alloc(1 << 20).is_ok());
    }

    /// WorkPool parallel sum equals the serial sum for arbitrary
    /// inputs, chunk sizes, and worker counts.
    #[test]
    fn workpool_sum_matches_serial(
        xs in prop::collection::vec(-100.0f64..100.0, 1..500),
        chunk in 1usize..64,
        workers in 0usize..5,
    ) {
        use heterosim::raja::WorkPool;
        let pool = WorkPool::new(workers);
        let parallel = pool.sum(0, xs.len(), chunk, |i| xs[i]);
        let serial: f64 = xs.iter().sum();
        prop_assert!((parallel - serial).abs() < 1e-9 * (1.0 + serial.abs()));
    }

    /// Exact Riemann solutions are physical for random left/right
    /// states: positive density/pressure everywhere in the fan.
    #[test]
    fn riemann_solution_is_physical(
        rho_l in 0.1f64..5.0,
        p_l in 0.05f64..5.0,
        u_l in -1.0f64..1.0,
        rho_r in 0.1f64..5.0,
        p_r in 0.05f64..5.0,
        u_r in -1.0f64..1.0,
    ) {
        use heterosim::hydro::{exact_solution, GasState};
        let left = GasState { rho: rho_l, u: u_l, p: p_l };
        let right = GasState { rho: rho_r, u: u_r, p: p_r };
        for i in 0..40 {
            let xi = -4.0 + 8.0 * i as f64 / 39.0;
            let s = exact_solution(&left, &right, xi);
            prop_assert!(s.rho > 0.0 && s.rho.is_finite(), "rho {} at xi {}", s.rho, xi);
            prop_assert!(s.p > 0.0 && s.p.is_finite(), "p {} at xi {}", s.p, xi);
            prop_assert!(s.u.is_finite());
        }
    }
}
