//! Chaos property: any single-site fault plan either fully recovers
//! (the Sedov solution is intact within convergence tolerance) or
//! fails with a typed error — never a panic, never a hang. The run
//! returning at all is the no-hang proof: a dead rank's channels drop
//! and every peer's blocked receive turns into a typed disconnect.

use std::sync::OnceLock;

use proptest::prelude::*;

use heterosim::core::faults::FaultPlan;
use heterosim::core::{runner, ExecMode, RunConfig};
use heterosim::raja::Fidelity;

const SITES: [&str; 7] = [
    "gpu.launch",
    "gpu.oom",
    "mps.connect",
    "xfer.delay",
    "xfer.corrupt",
    "rank.loss",
    "pool.panic",
];

/// A small full-fidelity Heterogeneous Sedov run (16 ranks, shared
/// host pool so the pool-panic site is live).
fn chaos_cfg(spec: Option<&str>) -> RunConfig {
    let mut cfg = RunConfig::sweep((16, 24, 16), ExecMode::hetero());
    cfg.fidelity = Fidelity::Full;
    cfg.cycles = 2;
    cfg.host_threads = 2;
    cfg.faults = spec.map(|s| FaultPlan::parse(s).expect(s));
    cfg
}

/// The fault-free mass, computed once: the recovery yardstick.
fn baseline_mass() -> f64 {
    static MASS: OnceLock<f64> = OnceLock::new();
    *MASS.get_or_init(|| {
        runner::run(&chaos_cfg(None))
            .expect("fault-free run")
            .mass
            .expect("full fidelity carries mass")
    })
}

proptest! {
    #[test]
    fn any_single_site_fault_recovers_or_errors_typed(
        site in 0usize..7,
        rank in 0usize..16,
        cycle in 0u64..2,
        count in 1u32..5,
    ) {
        // rank.loss is permanent by definition; every other site gets
        // a transient count that sometimes blows the retry budget.
        let spec = if SITES[site] == "rank.loss" {
            format!("rank.loss@rank{rank}.cycle{cycle}")
        } else {
            format!("{}@rank{rank}.cycle{cycle}:count={count}", SITES[site])
        };
        let cfg = chaos_cfg(Some(&spec));
        let out = std::panic::catch_unwind(|| runner::run(&cfg));
        prop_assert!(out.is_ok(), "{spec}: the runner panicked");
        match out.unwrap() {
            Ok(r) => {
                // Full recovery: the solution must be the fault-free
                // one. Bitwise for transient sites; rank loss changes
                // only the reduction association across boxes.
                let m = r.mass.expect("full fidelity carries mass");
                let rel = ((m - baseline_mass()) / baseline_mass()).abs();
                prop_assert!(rel < 1e-10, "{spec}: relative mass drift {rel:e}");
                prop_assert!(!r.ranks.is_empty(), "{spec}");
                prop_assert!(r.runtime.as_secs_f64() > 0.0, "{spec}");
            }
            Err(e) => {
                prop_assert!(!e.is_empty(), "{spec}: empty error");
                prop_assert!(
                    e.contains("injected") || e.contains("rank"),
                    "{spec}: untyped error {e:?}"
                );
            }
        }
    }
}
