//! Configuration-matrix smoke tests: every mode × problem × option
//! combination must run, and basic monotonicities must hold.

use heterosim::core::runner::Problem;
use heterosim::core::{run, ExecMode, RunConfig};
use heterosim::hydro::{DiffusionConfig, PerturbedConfig, SodConfig};
use heterosim::time::SimDuration;

fn modes() -> Vec<ExecMode> {
    vec![
        ExecMode::CpuOnly,
        ExecMode::Default,
        ExecMode::Mps { per_gpu: 2 },
        ExecMode::mps4(),
        ExecMode::hetero(),
    ]
}

#[test]
fn every_mode_runs_every_problem_cost_only() {
    for mode in modes() {
        for problem in [
            Problem::default(),
            Problem::Sod(SodConfig::default()),
            Problem::Perturbed(PerturbedConfig::default()),
        ] {
            let mut cfg = RunConfig::sweep((64, 48, 32), mode);
            cfg.cycles = 2;
            cfg.problem = problem.clone();
            let r = run(&cfg).unwrap_or_else(|e| panic!("{mode:?} {problem:?}: {e}"));
            assert!(r.runtime > SimDuration::ZERO);
            assert_eq!(r.cycles, 2);
        }
    }
}

#[test]
fn cost_only_runtime_is_independent_of_the_problem() {
    // Virtual time depends on sizes and shapes only: the three
    // problems must charge identical time in cost-only fidelity.
    let mut times = Vec::new();
    for problem in [
        Problem::default(),
        Problem::Sod(SodConfig::default()),
        Problem::Perturbed(PerturbedConfig::default()),
    ] {
        let mut cfg = RunConfig::sweep((64, 48, 32), ExecMode::Default);
        cfg.cycles = 3;
        cfg.problem = problem;
        times.push(run(&cfg).unwrap().runtime);
    }
    assert_eq!(times[0], times[1]);
    assert_eq!(times[0], times[2]);
}

#[test]
fn runtime_grows_monotonically_with_zones() {
    for mode in [ExecMode::Default, ExecMode::mps4(), ExecMode::hetero()] {
        let mut last = SimDuration::ZERO;
        for nx in [64usize, 128, 256, 512] {
            let cfg = RunConfig::sweep((nx, 48, 32), mode);
            let r = run(&cfg).unwrap();
            assert!(
                r.runtime > last,
                "{mode:?}: runtime must grow with zones (nx={nx})"
            );
            last = r.runtime;
        }
    }
}

#[test]
fn options_compose_without_errors() {
    // diffusion + gpu_direct + multipolicy + trace, all at once.
    let mut cfg = RunConfig::sweep((96, 64, 48), ExecMode::hetero());
    cfg.cycles = 2;
    cfg.diffusion = Some(DiffusionConfig { kappa: 5e-4 });
    cfg.gpu_direct = true;
    cfg.multipolicy_threshold = 500;
    cfg.trace = true;
    let r = run(&cfg).unwrap();
    assert!(r.trace.is_some());
    assert!(r.runtime > SimDuration::ZERO);
}

#[test]
fn more_cycles_cost_proportionally_more() {
    let mut cfg = RunConfig::sweep((128, 96, 64), ExecMode::Default);
    cfg.cycles = 2;
    let short = run(&cfg).unwrap().runtime;
    cfg.cycles = 8;
    let long = run(&cfg).unwrap().runtime;
    let ratio = long.ratio(short);
    assert!(
        (3.5..4.5).contains(&ratio),
        "8 cycles vs 2 should be ~4x: {ratio}"
    );
}

#[test]
fn rank_reports_are_complete_and_consistent() {
    let cfg = RunConfig::sweep((96, 96, 96), ExecMode::hetero());
    let r = run(&cfg).unwrap();
    let zones_total: u64 = r.ranks.iter().map(|x| x.zones).sum();
    assert_eq!(zones_total, r.zones, "rank zones must cover the grid");
    for rank in &r.ranks {
        assert!(rank.total <= r.runtime, "no rank exceeds the makespan");
        assert!(rank.launches > 0, "every rank launches kernels");
    }
    // The runtime equals the slowest rank exactly.
    let max = r.ranks.iter().map(|x| x.total).max().unwrap();
    assert_eq!(max, r.runtime);
}
