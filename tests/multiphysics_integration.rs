//! Multi-physics functional integration: hydro + diffusion across a
//! real decomposition, validated against the single-domain run.

use heterosim::core::coupler::MpiCoupler;
use heterosim::core::runner::build_decomposition;
use heterosim::core::{ExecMode, RunConfig};
use heterosim::hydro::diffusion::{diffuse_step, DiffusionConfig};
use heterosim::hydro::sedov::{self, SedovConfig};
use heterosim::hydro::{step, HydroState, SoloCoupler};
use heterosim::mesh::{GlobalGrid, HaloPlan, Subdomain};
use heterosim::mpi::{CommCost, World};
use heterosim::raja::{CpuModel, Executor, Fidelity, Target};
use heterosim::time::RankClock;

const N: usize = 16;
const CYCLES: u64 = 2;
const KAPPA: f64 = 1e-3;

fn solo_energy_field() -> Vec<f64> {
    let grid = GlobalGrid::new(N, N, N);
    let sub = Subdomain::new([0, 0, 0], [N, N, N], 1);
    let mut st = HydroState::new(grid, sub, Fidelity::Full);
    sedov::init(&mut st, &SedovConfig::default());
    let mut exec = Executor::new(Target::CpuSeq, CpuModel::haswell_fixed(), Fidelity::Full);
    let mut clock = RankClock::new(0);
    let mut solo = SoloCoupler;
    let diff = DiffusionConfig { kappa: KAPPA };
    for _ in 0..CYCLES {
        let stats = step(&mut st, &mut exec, &mut clock, &mut solo, 0.3, 1.0).unwrap();
        diffuse_step(&mut st, &mut exec, &mut clock, &mut solo, &diff, stats.dt).unwrap();
    }
    let mut out = vec![0.0; N * N * N];
    for k in 0..N {
        for j in 0..N {
            for i in 0..N {
                out[(k * N + j) * N + i] = st.u.get(4, i, j, k);
            }
        }
    }
    out
}

#[test]
fn multiphysics_multirank_matches_solo_bitwise() {
    let reference = solo_energy_field();
    let grid = GlobalGrid::new(N, N, N);
    let cfg = RunConfig::sweep((N, N, N), ExecMode::mps4());
    let decomp = build_decomposition(&cfg, 0.0).expect("decomposition");
    let plan = HaloPlan::build(&decomp);
    let (decomp, plan) = (&decomp, &plan);

    let pieces = World::run(decomp.len(), CommCost::on_node(), |comm| {
        let rank = comm.rank();
        let sub = decomp.domains[rank];
        let mut st = HydroState::new(grid, sub, Fidelity::Full);
        sedov::init(&mut st, &SedovConfig::default());
        let mut exec = Executor::new(Target::CpuSeq, CpuModel::haswell_fixed(), Fidelity::Full);
        let mut clock = RankClock::new(rank);
        let mut coupler = MpiCoupler {
            comm,
            plan,
            decomp,
            gpu_spec: None,
            gpu_direct: false,
        };
        let diff = DiffusionConfig { kappa: KAPPA };
        for _ in 0..CYCLES {
            let stats = step(&mut st, &mut exec, &mut clock, &mut coupler, 0.3, 1.0).unwrap();
            diffuse_step(
                &mut st,
                &mut exec,
                &mut clock,
                &mut coupler,
                &diff,
                stats.dt,
            )
            .unwrap();
        }
        let mut out = Vec::new();
        for k in 0..sub.extent(2) {
            for j in 0..sub.extent(1) {
                for i in 0..sub.extent(0) {
                    out.push((
                        (i + sub.lo[0], j + sub.lo[1], k + sub.lo[2]),
                        st.u.get(4, i, j, k),
                    ));
                }
            }
        }
        out
    });

    let mut checked = 0;
    for piece in pieces {
        for ((i, j, k), en) in piece {
            let expect = reference[(k * N + j) * N + i];
            assert_eq!(
                en.to_bits(),
                expect.to_bits(),
                "energy mismatch at ({i},{j},{k})"
            );
            checked += 1;
        }
    }
    assert_eq!(checked, N * N * N);
}

#[test]
fn diffusion_dt_substepping_is_decomposition_independent() {
    // The substep count depends only on dx and kappa — identical for
    // every rank, so the bulk-synchronous structure holds.
    let grid = GlobalGrid::new(N, N, N);
    let whole = HydroState::new(
        grid,
        Subdomain::new([0, 0, 0], [N, N, N], 1),
        Fidelity::Full,
    );
    let part = HydroState::new(
        grid,
        Subdomain::new([0, 0, 0], [N / 2, N, N], 1),
        Fidelity::Full,
    );
    let d1 = heterosim::hydro::diffusion_dt(&whole, KAPPA);
    let d2 = heterosim::hydro::diffusion_dt(&part, KAPPA);
    assert_eq!(d1, d2);
}
