//! Physics validation of the hydro substrate: the computed Sedov
//! blast wave must converge toward the similarity solution with
//! resolution, conserve invariants, and stay symmetric.

use heterosim::hydro::sedov::{self, radial_density_profile, shock_position, SedovConfig};
use heterosim::hydro::{step, HydroState, SoloCoupler};
use heterosim::mesh::{GlobalGrid, Subdomain};
use heterosim::raja::{CpuModel, Executor, Fidelity, Target};
use heterosim::time::RankClock;

/// Run a Sedov problem to t ≈ t_end; returns (state, shock radius).
fn run_to(n: usize, t_end: f64) -> (HydroState, f64) {
    let grid = GlobalGrid::new(n, n, n);
    let sub = Subdomain::new([0, 0, 0], [n, n, n], 1);
    let mut st = HydroState::new(grid, sub, Fidelity::Full);
    sedov::init(&mut st, &SedovConfig::default());
    let mut exec = Executor::new(Target::CpuSeq, CpuModel::haswell_fixed(), Fidelity::Full);
    let mut clock = RankClock::new(0);
    let mut solo = SoloCoupler;
    let mut guard = 0;
    while st.t < t_end {
        step(&mut st, &mut exec, &mut clock, &mut solo, 0.3, 1.0).expect("cycle");
        guard += 1;
        assert!(guard < 3000, "did not reach t={t_end}");
    }
    let profile = radial_density_profile(&st, (n as f64 * 0.75) as usize);
    let r = shock_position(&profile);
    (st, r)
}

#[test]
fn shock_radius_is_within_fifteen_percent_of_similarity_solution() {
    let t_end = 0.06;
    let (st, r_num) = run_to(32, t_end);
    let r_ana = sedov::sedov_shock_radius(1.0, 1.0, st.t);
    let rel = (r_num - r_ana).abs() / r_ana;
    assert!(
        rel < 0.15,
        "shock at {r_num:.4} vs analytic {r_ana:.4} (rel {rel:.3})"
    );
}

/// With resolution the captured shock sharpens: the shell's peak
/// density climbs monotonically toward the strong-shock limit
/// (γ+1)/(γ−1) = 6 (a first-order scheme smears it heavily on coarse
/// grids — what matters is monotone convergence).
#[test]
fn shock_peak_density_converges_with_resolution() {
    let t_end = 0.05;
    let peak = |n: usize| -> f64 {
        let (st, _) = run_to(n, t_end);
        radial_density_profile(&st, n)
            .iter()
            .map(|(_, d, _)| *d)
            .fold(0.0, f64::max)
    };
    let p16 = peak(16);
    let p24 = peak(24);
    let p32 = peak(32);
    assert!(
        p16 < p24 && p24 < p32,
        "peak density must grow with resolution: {p16:.3}, {p24:.3}, {p32:.3}"
    );
    assert!(p32 < 6.0, "peak cannot exceed the strong-shock limit");
}

#[test]
fn invariants_hold_over_a_long_run() {
    let grid = GlobalGrid::new(20, 20, 20);
    let sub = Subdomain::new([0, 0, 0], [20, 20, 20], 1);
    let mut st = HydroState::new(grid, sub, Fidelity::Full);
    sedov::init(&mut st, &SedovConfig::default());
    let mass0 = st.total_mass();
    let e0 = st.total_energy();
    let mut exec = Executor::new(Target::CpuSeq, CpuModel::haswell_fixed(), Fidelity::Full);
    let mut clock = RankClock::new(0);
    let mut solo = SoloCoupler;
    let mut last_dt = f64::INFINITY;
    for cycle in 0..60 {
        let stats = step(&mut st, &mut exec, &mut clock, &mut solo, 0.3, 1.0).expect("cycle");
        assert!(stats.dt > 0.0 && stats.dt.is_finite(), "cycle {cycle}");
        // After the initial transient the timestep grows smoothly as
        // the blast decelerates; it must never collapse.
        if cycle > 5 {
            assert!(stats.dt > last_dt * 0.5, "dt collapsed at cycle {cycle}");
        }
        last_dt = stats.dt;
    }
    assert!(
        ((st.total_mass() - mass0) / mass0).abs() < 1e-9,
        "mass drift"
    );
    assert!(((st.total_energy() - e0) / e0).abs() < 1e-9, "energy drift");
}

#[test]
fn blast_is_octant_symmetric() {
    let (st, _) = run_to(24, 0.03);
    let n = 24;
    // Check across two mirror planes:
    for k in 0..n {
        for j in 0..n {
            for i in 0..n / 2 {
                let a = st.u.get(0, i, j, k);
                let bx = st.u.get(0, n - 1 - i, j, k);
                assert!((a - bx).abs() < 1e-9, "x-mirror at ({i},{j},{k})");
            }
        }
    }
    for k in 0..n {
        for i in 0..n {
            for j in 0..n / 2 {
                let a = st.u.get(0, i, j, k);
                let by = st.u.get(0, i, n - 1 - j, k);
                assert!((a - by).abs() < 1e-9, "y-mirror at ({i},{j},{k})");
            }
        }
    }
}
