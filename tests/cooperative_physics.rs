//! Cross-crate functional correctness: the cooperative runner must
//! produce *identical physics* in every mode — the whole point of the
//! single-source portability layer is that where a kernel runs never
//! changes what it computes.

use heterosim::core::coupler::MpiCoupler;
use heterosim::core::runner::build_decomposition;
use heterosim::core::{ExecMode, RunConfig};
use heterosim::hydro::sedov::{self, SedovConfig};
use heterosim::hydro::{step, HydroState, SoloCoupler};
use heterosim::mesh::{GlobalGrid, HaloPlan, Subdomain};
use heterosim::mpi::{CommCost, World};
use heterosim::raja::{CpuModel, Executor, Fidelity, Target};
use heterosim::time::RankClock;

const N: usize = 16;
const CYCLES: u64 = 3;

/// Reference: the whole grid on one rank.
fn solo_density() -> Vec<f64> {
    let grid = GlobalGrid::new(N, N, N);
    let sub = Subdomain::new([0, 0, 0], [N, N, N], 1);
    let mut st = HydroState::new(grid, sub, Fidelity::Full);
    sedov::init(&mut st, &SedovConfig::default());
    let mut exec = Executor::new(Target::CpuSeq, CpuModel::haswell_fixed(), Fidelity::Full);
    let mut clock = RankClock::new(0);
    let mut solo = SoloCoupler;
    for _ in 0..CYCLES {
        step(&mut st, &mut exec, &mut clock, &mut solo, 0.3, 1.0).expect("cycle");
    }
    let mut out = vec![0.0; N * N * N];
    for k in 0..N {
        for j in 0..N {
            for i in 0..N {
                out[(k * N + j) * N + i] = st.u.get(0, i, j, k);
            }
        }
    }
    out
}

/// Run the same problem decomposed per `mode` (CPU targets everywhere
/// — the execution target never changes results) and compare bitwise.
fn mode_density(mode: ExecMode) -> Vec<f64> {
    let grid = GlobalGrid::new(N, N, N);
    let cfg = RunConfig::sweep((N, N, N), mode);
    // Small grids cannot host the real CPU-rank counts; derive a
    // feasible fraction for hetero.
    let decomp = build_decomposition(&cfg, 0.25).expect("decomposition");
    decomp.validate().expect("valid");
    let plan = HaloPlan::build(&decomp);
    let (decomp, plan) = (&decomp, &plan);

    let pieces = World::run(decomp.len(), CommCost::on_node(), |comm| {
        let rank = comm.rank();
        let sub = decomp.domains[rank];
        let mut st = HydroState::new(grid, sub, Fidelity::Full);
        sedov::init(&mut st, &SedovConfig::default());
        let mut exec = Executor::new(Target::CpuSeq, CpuModel::haswell_fixed(), Fidelity::Full);
        let mut clock = RankClock::new(rank);
        let mut coupler = MpiCoupler {
            comm,
            plan,
            decomp,
            gpu_spec: None,
            gpu_direct: false,
        };
        for _ in 0..CYCLES {
            step(&mut st, &mut exec, &mut clock, &mut coupler, 0.3, 1.0).expect("cycle");
        }
        let mut out = Vec::new();
        for k in 0..sub.extent(2) {
            for j in 0..sub.extent(1) {
                for i in 0..sub.extent(0) {
                    out.push((
                        (i + sub.lo[0], j + sub.lo[1], k + sub.lo[2]),
                        st.u.get(0, i, j, k),
                    ));
                }
            }
        }
        out
    });

    let mut out = vec![f64::NAN; N * N * N];
    for piece in pieces {
        for ((i, j, k), rho) in piece {
            out[(k * N + j) * N + i] = rho;
        }
    }
    out
}

fn assert_bitwise_equal(a: &[f64], b: &[f64], label: &str) {
    assert_eq!(a.len(), b.len());
    let mut mismatches = 0;
    for (idx, (x, y)) in a.iter().zip(b).enumerate() {
        if x.to_bits() != y.to_bits() {
            mismatches += 1;
            if mismatches <= 3 {
                eprintln!("{label}: mismatch at {idx}: {x} vs {y}");
            }
        }
    }
    assert_eq!(mismatches, 0, "{label}: {mismatches} mismatching zones");
}

#[test]
fn default_mode_decomposition_matches_solo() {
    let reference = solo_density();
    let got = mode_density(ExecMode::Default);
    assert_bitwise_equal(&got, &reference, "default");
}

#[test]
fn mps_mode_decomposition_matches_solo() {
    let reference = solo_density();
    let got = mode_density(ExecMode::mps4());
    assert_bitwise_equal(&got, &reference, "mps");
}

#[test]
fn heterogeneous_decomposition_matches_solo() {
    let reference = solo_density();
    let got = mode_density(ExecMode::hetero());
    assert_bitwise_equal(&got, &reference, "hetero");
}

#[test]
fn cpu_only_decomposition_matches_solo() {
    let reference = solo_density();
    let got = mode_density(ExecMode::CpuOnly);
    assert_bitwise_equal(&got, &reference, "cpuonly");
}

/// The full cooperative runner (with simulated GPUs in the loop) keeps
/// physics intact too: run in full fidelity and check conservation.
#[test]
fn full_fidelity_runner_conserves_mass() {
    // The runner owns its state internally, so conservation is checked
    // through the public reporting: every mode must run the same cycle
    // count without error at full fidelity.
    for mode in [ExecMode::Default, ExecMode::mps4()] {
        let mut cfg = RunConfig::sweep((N, N, N), mode);
        cfg.fidelity = Fidelity::Full;
        cfg.cycles = 2;
        let r = heterosim::core::run(&cfg).expect("full-fidelity run");
        assert_eq!(r.cycles, 2);
        assert!(r.runtime.as_secs_f64() > 0.0);
    }
}
