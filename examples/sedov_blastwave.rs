//! The 3D Sedov blast wave (paper Figure 11), run functionally on one
//! domain: evolve the blast, print the radial density profile as an
//! ASCII curve, and compare the measured shock position against the
//! Sedov similarity solution R(t) = ξ₀ (E t² / ρ)^{1/5}.
//!
//! ```sh
//! cargo run --release --example sedov_blastwave
//! ```

use heterosim::hydro::sedov::{self, radial_density_profile, shock_position, SedovConfig};
use heterosim::hydro::{step, HydroState, SoloCoupler};
use heterosim::mesh::{GlobalGrid, Subdomain};
use heterosim::raja::{CpuModel, Executor, Fidelity, Target};
use heterosim::time::RankClock;

fn main() {
    let n = 48;
    let grid = GlobalGrid::new(n, n, n);
    let sub = Subdomain::new([0, 0, 0], [n, n, n], 1);
    let mut state = HydroState::new(grid, sub, Fidelity::Full);
    let cfg = SedovConfig::default();
    sedov::init(&mut state, &cfg);

    let mut exec = Executor::new(Target::CpuSeq, CpuModel::haswell_fixed(), Fidelity::Full);
    let mut clock = RankClock::new(0);
    let mut solo = SoloCoupler;

    let mass0 = state.total_mass();
    let energy0 = state.total_energy();

    println!(
        "3D Sedov blast wave on a {n}^3 grid (E0 = {}, rho0 = {})",
        cfg.e0, cfg.rho0
    );
    println!();
    println!("cycle    t          dt         shock_r    analytic_r");
    let mut cycles = 0u64;
    while cycles < 120 {
        let stats = step(&mut state, &mut exec, &mut clock, &mut solo, 0.3, 1.0).expect("cycle");
        cycles += 1;
        if cycles.is_multiple_of(20) {
            let profile = radial_density_profile(&state, 24);
            let r_num = shock_position(&profile);
            let r_ana = sedov::sedov_shock_radius(cfg.e0, cfg.rho0, state.t);
            println!(
                "{cycles:>5}  {:>9.5}  {:>9.2e}  {:>9.4}  {:>9.4}",
                state.t, stats.dt, r_num, r_ana
            );
        }
    }

    let mass1 = state.total_mass();
    let energy1 = state.total_energy();
    println!();
    println!(
        "conservation: mass drift {:+.2e}, energy drift {:+.2e}",
        (mass1 - mass0) / mass0,
        (energy1 - energy0) / energy0
    );

    // ASCII radial density profile (the Figure 11 view).
    let profile = radial_density_profile(&state, 30);
    let max_rho = profile.iter().map(|(_, d, _)| *d).fold(0.0f64, f64::max);
    println!();
    println!("radial density profile (peak = shock shell):");
    for (r, rho, count) in &profile {
        if *count == 0 {
            continue;
        }
        let bar = "#".repeat(((rho / max_rho) * 50.0) as usize);
        println!("r={r:>6.3}  rho={rho:>7.4}  {bar}");
    }
    println!();
    println!(
        "measured shock at r = {:.4}, similarity solution {:.4} (first-order scheme, coarse grid)",
        shock_position(&profile),
        sedov::sedov_shock_radius(cfg.e0, cfg.rho0, state.t)
    );
    println!(
        "{} kernel launches issued over {cycles} cycles",
        exec.registry.total_launches()
    );
}
