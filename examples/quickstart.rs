//! Quickstart: run the Sedov problem on a simulated RZHasGPU node in
//! the paper's Heterogeneous mode and print what happened.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use heterosim::core::{run, ExecMode, RunConfig};

fn main() {
    // The paper's best-case shape (Figure 18 family), scaled down so
    // the example finishes instantly.
    let cfg = RunConfig::sweep((160, 240, 80), ExecMode::hetero());
    let result = run(&cfg).expect("cooperative run");

    println!("mode:          {}", result.mode_label);
    println!(
        "grid:          {} x {} x {} = {} zones",
        result.grid.0, result.grid.1, result.grid.2, result.zones
    );
    println!("cycles:        {}", result.cycles);
    println!("ranks:         {}", result.ranks.len());
    println!(
        "CPU work:      {:.2}% of zones",
        result.cpu_fraction * 100.0
    );
    println!(
        "runtime:       {:.4} simulated seconds",
        result.runtime.as_secs_f64()
    );
    println!("kernel launches: {}", result.total_launches());
    println!("MPI traffic:     {} bytes", result.total_bytes_sent());
    println!();
    println!("per-rank breakdown:");
    println!("{}", result.breakdown_table());
}
