//! Multi-physics on the heterogeneous node: hydro + thermal diffusion
//! run cooperatively across all four execution modes.
//!
//! ```sh
//! cargo run --release --example multiphysics
//! ```

use heterosim::core::{run, ExecMode, RunConfig};
use heterosim::hydro::DiffusionConfig;

fn main() {
    let grid = (256, 240, 160);
    println!(
        "hydro + diffusion packages on {}x{}x{} = {} zones (10 cycles)",
        grid.0,
        grid.1,
        grid.2,
        grid.0 * grid.1 * grid.2
    );
    println!();
    println!(
        "{:24} {:>12} {:>12} {:>10}",
        "mode", "hydro-only", "+diffusion", "overhead"
    );
    for mode in [
        ExecMode::Default,
        ExecMode::mps4(),
        ExecMode::hetero(),
        ExecMode::CpuOnly,
    ] {
        let base_cfg = RunConfig::sweep(grid, mode);
        let base = run(&base_cfg).expect("hydro-only run");
        let multi_cfg = RunConfig {
            diffusion: Some(DiffusionConfig { kappa: 1e-3 }),
            ..base_cfg
        };
        let multi = run(&multi_cfg).expect("multi-physics run");
        println!(
            "{:24} {:>10.4}s {:>10.4}s {:>9.1}%",
            base.mode_label,
            base.runtime.as_secs_f64(),
            multi.runtime.as_secs_f64(),
            (multi.runtime.as_secs_f64() / base.runtime.as_secs_f64() - 1.0) * 100.0
        );
    }
    println!();
    println!(
        "The diffusion package adds the same relative cost in every mode: its kernels\n\
         run through the identical portability layer and decomposition, which is the\n\
         paper's single-source premise extended to a second physics package."
    );
}
