//! Reproduce one evaluation figure end to end and chart it in the
//! terminal (the `figures` binary does all seven; this example shows
//! the API).
//!
//! ```sh
//! cargo run --release --example figure_sweep            # fig18
//! cargo run --release --example figure_sweep -- fig13   # pick one
//! ```

use heterosim::bench::{ascii_chart, paper_modes, run_figure};
use heterosim::core::figures;

fn main() {
    let pick = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "fig18".to_string());
    let spec = figures::all_figures()
        .into_iter()
        .find(|f| f.id == pick)
        .unwrap_or_else(|| panic!("unknown figure {pick}; use fig12..fig18"));

    eprintln!(
        "sweeping {} — {} ({} points x 3 modes)...",
        spec.id,
        spec.caption,
        spec.values.len()
    );
    let data = run_figure(&spec, &paper_modes());

    println!("\n=== {} — {} ===", spec.id, spec.caption);
    println!("{}", ascii_chart(&data.chart_series(), 72, 20));
    println!("series (zones, runtime seconds):");
    for s in &data.series {
        println!("  {}:", s.label);
        for (zones, swept, t, f) in &s.points {
            let share = if *f > 0.0 {
                format!("  cpu {:.2}%", f * 100.0)
            } else {
                String::new()
            };
            println!(
                "    {:>10} zones (dim {:>4}) -> {:>8.4}s{share}",
                zones, swept, t
            );
        }
    }
}
