//! The §6.2 load balancer at work: start from the FLOPS guess, feed
//! back measured CPU/GPU times, converge — then compare against naive
//! fixed splits and against the projected fixed-compiler node.
//!
//! ```sh
//! cargo run --release --example load_balancing
//! ```

use heterosim::core::runner::run_with_fraction;
use heterosim::core::{run_balanced, ExecMode, NodeConfig, RunConfig};
use heterosim::raja::Fidelity;

fn main() {
    let grid = (450, 480, 160);
    let cfg = RunConfig::sweep(grid, ExecMode::hetero());

    println!(
        "heterogeneous load balancing on grid {grid:?} ({} zones)",
        grid.0 * grid.1 * grid.2
    );
    let (balanced, lb) = run_balanced(&cfg).expect("balanced run");
    println!();
    println!("balancer trajectory (CPU fraction per iteration):");
    for (i, f) in lb.history.iter().enumerate() {
        println!("  iter {i}: {:.4} ({:.2}% of zones)", f, f * 100.0);
    }
    println!("converged: {}", lb.converged(0.002));
    println!(
        "balanced runtime: {:.4}s at cpu share {:.2}%",
        balanced.runtime.as_secs_f64(),
        balanced.cpu_fraction * 100.0
    );

    println!();
    println!("naive splits for comparison:");
    for f in [0.005, 0.02, 0.08, 0.15] {
        let r = run_with_fraction(&cfg, f).expect("fixed-fraction run");
        println!(
            "  fixed {:>5.1}% -> runtime {:.4}s (realized {:.2}%)",
            f * 100.0,
            r.runtime.as_secs_f64(),
            r.cpu_fraction * 100.0
        );
    }

    // The paper's projection: once the nvcc decorated-lambda bug is
    // fixed, significantly more work can go to the CPUs.
    let fixed_node = RunConfig {
        node: NodeConfig::rzhasgpu_fixed_compiler(),
        fidelity: Fidelity::CostOnly,
        ..cfg.clone()
    };
    let (projected, lb2) = run_balanced(&fixed_node).expect("projected run");
    println!();
    println!(
        "with the compiler issue resolved: cpu share {:.2}% (vs {:.2}%), runtime {:.4}s (vs {:.4}s)",
        projected.cpu_fraction * 100.0,
        balanced.cpu_fraction * 100.0,
        projected.runtime.as_secs_f64(),
        balanced.runtime.as_secs_f64()
    );
    println!(
        "projected balancer: {:?}",
        lb2.history
            .iter()
            .map(|f| (f * 1e4).round() / 1e4)
            .collect::<Vec<_>>()
    );
}
