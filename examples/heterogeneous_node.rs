//! The paper's core comparison (Figures 1–4): the same problem run in
//! all four node-utilization modes, with per-rank time breakdowns.
//!
//! ```sh
//! cargo run --release --example heterogeneous_node
//! ```

use heterosim::core::{run_balanced, ExecMode, RunConfig};

fn main() {
    let grid = (320, 480, 160); // a mid-size Figure 18 point
    println!(
        "Sedov on a simulated RZHasGPU node, grid {}x{}x{} = {} zones, 10 cycles",
        grid.0,
        grid.1,
        grid.2,
        grid.0 * grid.1 * grid.2
    );
    println!();

    let mut default_runtime = None;
    for mode in [
        ExecMode::CpuOnly,
        ExecMode::Default,
        ExecMode::mps4(),
        ExecMode::hetero(),
    ] {
        let cfg = RunConfig::sweep(grid, mode);
        let (r, lb) = run_balanced(&cfg).expect("mode runs");
        let vs_default = match default_runtime {
            Some(d) => format!(
                "{:+6.1}% vs Default",
                (r.runtime.as_secs_f64() / d - 1.0) * 100.0
            ),
            None => String::new(),
        };
        if matches!(mode, ExecMode::Default) {
            default_runtime = Some(r.runtime.as_secs_f64());
        }
        println!(
            "{:24} runtime {:>8.4}s  ranks {:>2}  cpu share {:>5.2}%  {}",
            r.mode_label,
            r.runtime.as_secs_f64(),
            r.ranks.len(),
            r.cpu_fraction * 100.0,
            vs_default
        );
        if matches!(mode, ExecMode::Heterogeneous { .. }) {
            println!(
                "  balancer history: {:?}",
                lb.history
                    .iter()
                    .map(|f| (f * 1e4).round() / 1e4)
                    .collect::<Vec<_>>()
            );
            println!();
            println!("  heterogeneous per-rank breakdown:");
            for line in r.breakdown_table().lines() {
                println!("  {line}");
            }
        }
    }
}
