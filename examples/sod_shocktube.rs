//! The Sod shock tube against its exact Riemann solution, at first
//! and second (MUSCL) order.
//!
//! ```sh
//! cargo run --release --example sod_shocktube
//! ```

use heterosim::hydro::muscl::Reconstruction;
use heterosim::hydro::sod::{self, axial_density, exact_solution, SodConfig};
use heterosim::hydro::{step_with, HydroState, SoloCoupler};
use heterosim::mesh::{GlobalGrid, Subdomain};
use heterosim::raja::{CpuModel, Executor, Fidelity, Target};
use heterosim::time::RankClock;

fn run_tube(n: usize, recon: Reconstruction) -> (Vec<f64>, f64) {
    let grid = GlobalGrid::new(n, 4, 4);
    let ghost = match recon {
        Reconstruction::FirstOrder => 1,
        Reconstruction::Muscl => 2,
    };
    let sub = Subdomain::new([0, 0, 0], [n, 4, 4], ghost);
    let mut st = HydroState::new(grid, sub, Fidelity::Full);
    sod::init(&mut st, &SodConfig::default());
    let mut exec = Executor::new(Target::CpuSeq, CpuModel::haswell_fixed(), Fidelity::Full);
    let mut clock = RankClock::new(0);
    let mut solo = SoloCoupler;
    while st.t < 0.15 {
        step_with(&mut st, &mut exec, &mut clock, &mut solo, 0.25, 1.0, recon).expect("cycle");
    }
    let t = st.t;
    (axial_density(&st), t)
}

fn main() {
    let n = 128;
    let cfg = SodConfig::default();
    println!("Sod shock tube, {n} zones, t = 0.15 (density profiles)");
    println!();

    let (first, t1) = run_tube(n, Reconstruction::FirstOrder);
    let (second, _) = run_tube(n, Reconstruction::Muscl);

    let grid = GlobalGrid::new(n, 4, 4);
    let (dx, _, _) = grid.spacing();
    let x0 = cfg.diaphragm * grid.lx;

    println!("   x      exact   1st-ord  muscl    | profile (e=exact, 1=first, 2=muscl)");
    let mut l1_first = 0.0;
    let mut l1_second = 0.0;
    for i in (0..n).step_by(4) {
        let x = (i as f64 + 0.5) * dx;
        let exact = exact_solution(&cfg.left, &cfg.right, (x - x0) / t1).rho;
        let f = first[i];
        let s = second[i];
        let bar = |v: f64| ((v / 1.1) * 40.0) as usize;
        let mut row = [' '; 44];
        row[bar(exact).min(43)] = 'e';
        row[bar(f).min(43)] = '1';
        row[bar(s).min(43)] = '2';
        println!(
            "{x:>6.3}  {exact:>7.4}  {f:>7.4}  {s:>7.4}  |{}",
            row.iter().collect::<String>()
        );
    }
    for i in 0..n {
        let x = (i as f64 + 0.5) * dx;
        let exact = exact_solution(&cfg.left, &cfg.right, (x - x0) / t1).rho;
        l1_first += (first[i] - exact).abs();
        l1_second += (second[i] - exact).abs();
    }
    println!();
    println!(
        "L1 density error: first-order {:.5}, MUSCL {:.5} ({:.1}x better)",
        l1_first / n as f64,
        l1_second / n as f64,
        l1_first / l1_second
    );
}
