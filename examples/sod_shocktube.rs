//! The Sod shock tube as a first-class scenario, run through the
//! same `RunConfig` path as the figures and the serve layer.
//!
//! The run itself — initialization, stepping, the analytic-error
//! metric — is entirely the runner's: the example only selects
//! `--scenario sod` programmatically and renders what comes back in
//! [`RunResult::scenario`]. A second run at half resolution shows the
//! first-order L1 convergence against the exact Riemann solution.
//!
//! ```sh
//! cargo run --release --example sod_shocktube
//! ```

use heterosim::core::runner::RunConfig;
use heterosim::core::{runner, ExecMode, RunResult, Scenario};
use heterosim::hydro::sod::{exact_solution, SodConfig};
use heterosim::mesh::GlobalGrid;
use heterosim::raja::Fidelity;

/// One shock-tube run on an `n`-zone axis via the shared runner path.
/// The runner caps full-fidelity dt at its calibrated fallback, so
/// equal cycle counts reach the same end time at both resolutions.
fn run_tube(n: usize, cycles: u64) -> RunResult {
    let mut cfg = RunConfig::sweep((n, 4, 4), ExecMode::CpuOnly);
    cfg.problem = Scenario::Sod.problem();
    cfg.fidelity = Fidelity::Full;
    cfg.cycles = cycles;
    runner::run(&cfg).expect("sod scenario run")
}

fn main() {
    let n = 128;
    let cfg = SodConfig::default();
    println!("Sod shock tube as a scenario, {n} zones, CpuOnly, full fidelity");
    println!();

    let fine = run_tube(n, 600);
    let coarse = run_tube(n / 2, 600);
    let sc = fine.scenario.as_ref().expect("sod is a scenario problem");
    let sc2 = coarse.scenario.as_ref().expect("sod is a scenario problem");

    // The exact solution at the run's actual end time (the runner
    // steps under its CFL limit; t_end comes back in the outcome).
    let grid = GlobalGrid::new(n, 4, 4);
    let (dx, _, _) = grid.spacing();
    let x0 = cfg.diaphragm * grid.lx;
    println!(
        "exact density at t = {:.4} (e marks the profile):",
        sc.t_end
    );
    for i in (0..n).step_by(4) {
        let x = (i as f64 + 0.5) * dx;
        let rho = exact_solution(&cfg.left, &cfg.right, (x - x0) / sc.t_end).rho;
        let bar = (((rho / 1.1) * 40.0) as usize).min(43);
        let mut row = [' '; 44];
        row[bar] = 'e';
        println!("{x:>6.3}  {rho:>7.4}  |{}", row.iter().collect::<String>());
    }
    println!();

    let err = sc.error.expect("full-fidelity sod carries its L1 error");
    let err2 = sc2.error.expect("full-fidelity sod carries its L1 error");
    println!("scenario: {} (metric {})", sc.name, sc.metric);
    println!(
        "  {:>4} zones: L1 = {err2:.5}  (t_end {:.4})",
        n / 2,
        sc2.t_end
    );
    println!("  {n:>4} zones: L1 = {err:.5}  (t_end {:.4})", sc.t_end);
    println!(
        "  refinement ratio: {:.2}x (first-order scheme: expect > 1)",
        err2 / err
    );
    println!();
    println!(
        "mass: {:.6} (conserved by the runner across {} cycles)",
        fine.mass.expect("full fidelity reports mass"),
        fine.cycles
    );
    println!(
        "runtime: {:.6} simulated seconds",
        fine.runtime.as_secs_f64()
    );
}
